"""Tests for expression canonicalization, leaf dedup, and emit scheduling."""

import numpy as np
import pytest

from repro.core.measures import PercentileMeasure, PreferenceMeasure
from repro.core.predicates import And, Or, Predicate, pred
from repro.geometry.interval import Interval
from repro.geometry.rectangle import Rectangle
from repro.service.planner import (
    canonicalize,
    emit_schedule,
    evaluate_with_leaf_results,
    leaf_key,
    partial_bounds,
    plan_batch,
    plan_query,
)


def ptile_leaf(lo, hi, a, b=float("inf")) -> Predicate:
    return pred(PercentileMeasure(Rectangle([lo], [hi])), a, b)


def pref_leaf(x, y, k, tau) -> Predicate:
    v = np.array([x, y], dtype=float)
    return Predicate(PreferenceMeasure(v, k=k), Interval.at_least(tau))


@pytest.fixture
def abc():
    a = ptile_leaf(0.0, 0.5, 0.2)
    b = ptile_leaf(0.5, 1.0, 0.4)
    c = ptile_leaf(0.2, 0.8, 0.1, 0.9)
    return a, b, c


class TestLeafKeys:
    def test_semantically_equal_leaves_collide(self):
        k1 = leaf_key(ptile_leaf(0.0, 0.5, 0.2))
        k2 = leaf_key(ptile_leaf(0.0, 0.5, 0.2))
        assert k1 == k2 and hash(k1) == hash(k2)

    def test_distinct_leaves_differ(self):
        assert leaf_key(ptile_leaf(0.0, 0.5, 0.2)) != leaf_key(
            ptile_leaf(0.0, 0.5, 0.3)
        )
        assert leaf_key(pref_leaf(1, 0, 3, 0.5)) != leaf_key(pref_leaf(1, 0, 4, 0.5))

    def test_pref_vector_normalization_collides(self):
        # PreferenceMeasure normalizes at construction, so scaled vectors
        # denote the same measure and must share a key.
        assert leaf_key(pref_leaf(2, 0, 3, 0.5)) == leaf_key(pref_leaf(1, 0, 3, 0.5))

    def test_predicate_hash_eq(self):
        assert ptile_leaf(0.0, 0.5, 0.2) == ptile_leaf(0.0, 0.5, 0.2)
        assert len({ptile_leaf(0.0, 0.5, 0.2), ptile_leaf(0.0, 0.5, 0.2)}) == 1


class TestCanonicalize:
    def test_flattens_nested_same_operator(self, abc):
        a, b, c = abc
        canon = canonicalize(And([And([a, b]), c]))
        assert isinstance(canon, And)
        assert len(canon.children) == 3
        assert all(isinstance(ch, Predicate) for ch in canon.children)

    def test_does_not_flatten_across_operators(self, abc):
        a, b, c = abc
        canon = canonicalize(Or([And([a, b]), c]))
        assert isinstance(canon, Or)
        assert {type(ch) for ch in canon.children} == {And, Predicate}

    def test_duplicate_leaves_removed(self, abc):
        a, _b, c = abc
        dup = ptile_leaf(0.0, 0.5, 0.2)  # equal to `a`
        canon = canonicalize(And([a, dup, c]))
        assert canon.n_predicates == 2

    def test_single_child_collapses(self, abc):
        a, _b, _c = abc
        assert canonicalize(And([a, a])) is a
        assert canonicalize(Or([And([a])])) is a

    def test_commutativity_collides(self, abc):
        a, b, c = abc
        k1 = canonicalize(And([a, Or([b, c])])).canonical_key()
        k2 = canonicalize(And([Or([c, b]), a])).canonical_key()
        assert k1 == k2

    def test_preserves_semantics_on_random_expressions(self, repo_2d):
        from repro.workloads.queries import batched_query_workload

        batch = batched_query_workload(
            25, 2, np.random.default_rng(0), duplicate_leaf_rate=0.5, max_leaves=4
        )
        for expr in batch:
            canon = canonicalize(expr)
            assert canon.ground_truth(repo_2d) == expr.ground_truth(repo_2d)


class TestPlans:
    def test_plan_query_counts(self, abc):
        a, b, _c = abc
        dup = ptile_leaf(0.0, 0.5, 0.2)
        plan = plan_query(And([a, dup, b]))
        assert plan.n_leaves_raw == 3
        assert plan.n_leaves_unique == 2

    def test_plan_batch_cross_query_dedup(self, abc):
        a, b, c = abc
        batch = plan_batch([And([a, b]), Or([a, c]), a])
        assert batch.n_leaves_raw == 5
        assert batch.n_leaves_unique == 3
        assert 0.0 < batch.dedup_ratio < 1.0

    def test_evaluate_with_leaf_results(self, abc):
        a, b, c = abc
        results = {
            leaf_key(a): frozenset({0, 1, 2}),
            leaf_key(b): frozenset({2, 3}),
            leaf_key(c): frozenset({1, 2, 5}),
        }
        expr = And([Or([a, b]), c])
        assert evaluate_with_leaf_results(expr, results) == {1, 2}


class TestPartialBoundsAndSchedule:
    def test_unknown_leaf_gives_trivial_bounds(self, abc):
        a, _b, _c = abc
        universe = frozenset(range(5))
        lower, upper = partial_bounds(a, {}, universe)
        assert lower == set() and upper == set(universe)

    def test_and_determines_only_when_all_known(self, abc):
        a, b, _c = abc
        universe = frozenset(range(5))
        expr = And([a, b])
        lower, upper = partial_bounds(expr, {leaf_key(a): frozenset({0, 1})}, universe)
        assert lower == set() and upper == {0, 1}
        lower, _ = partial_bounds(
            expr,
            {leaf_key(a): frozenset({0, 1}), leaf_key(b): frozenset({1, 4})},
            universe,
        )
        assert lower == {1}

    def test_or_determines_early(self, abc):
        a, b, _c = abc
        universe = frozenset(range(5))
        lower, upper = partial_bounds(
            Or([a, b]), {leaf_key(a): frozenset({0, 1})}, universe
        )
        assert lower == {0, 1} and upper == set(universe)

    def test_emit_schedule_or_stamps_first_determination(self, abc):
        a, b, _c = abc
        ka, kb = leaf_key(a), leaf_key(b)
        results = {ka: frozenset({0, 1}), kb: frozenset({1, 2})}
        times = {ka: 10.0, kb: 20.0}
        schedule = emit_schedule(
            Or([a, b]), [ka, kb], results, times, frozenset(range(5))
        )
        assert schedule == [(0, 10.0), (1, 10.0), (2, 20.0)]

    def test_emit_schedule_and_stamps_last_leaf(self, abc):
        a, b, _c = abc
        ka, kb = leaf_key(a), leaf_key(b)
        results = {ka: frozenset({0, 1}), kb: frozenset({1, 2})}
        times = {ka: 10.0, kb: 20.0}
        schedule = emit_schedule(
            And([a, b]), [ka, kb], results, times, frozenset(range(5))
        )
        assert schedule == [(1, 20.0)]

    def test_emit_schedule_matches_full_evaluation(self):
        from repro.workloads.queries import batched_query_workload

        rng = np.random.default_rng(4)
        batch = batched_query_workload(
            20, 1, rng, duplicate_leaf_rate=0.4, max_leaves=4
        )
        universe = frozenset(range(10))
        sets_rng = np.random.default_rng(9)
        for expr in batch:
            plan = plan_query(expr)
            results = {
                key: frozenset(
                    int(i) for i in sets_rng.choice(10, size=4, replace=False)
                )
                for key in plan.leaves
            }
            order = list(plan.leaves)
            times = {key: float(i) for i, key in enumerate(order)}
            schedule = emit_schedule(plan.expression, order, results, times, universe)
            assert {idx for idx, _ in schedule} == evaluate_with_leaf_results(
                plan.expression, results
            )
