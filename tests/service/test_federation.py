"""Federated scatter-gather: exactness, degradation, breakers, endpoints.

The chaos-under-live-traffic suite (SIGKILLed node processes) lives in
``test_federation_chaos.py``; this file drives the coordinator against
in-process node servers, where failures are injected by shutting node
servers down, registering dead addresses, or arming the ``node_rpc``
failpoint in the coordinator process (which fails *every* scatter leg —
``faults.ARMED`` is process-global).
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core.framework import Repository
from repro.errors import QueryError
from repro.service import QueryService, faults
from repro.service.federation import (
    CircuitBreaker,
    FederatedCoordinator,
    federated_node_service,
    make_federation_server,
)
from repro.service.server import expression_to_json, make_server
from repro.synopsis.quantile import QuantileHistogramSynopsis
from repro.synopsis.serialize import to_dict as synopsis_to_dict
from repro.workloads.generators import synthetic_data_lake
from repro.workloads.queries import batched_query_workload

SEED = 31
DIM = 1
N_TOTAL = 18
N_NODES = 3


@pytest.fixture(autouse=True)
def disarmed():
    yield
    faults.disarm()


def _service(arrays):
    return QueryService(
        repository=Repository.from_arrays(arrays),
        n_shards=2,
        eps=0.2,
        sample_size=8,
        seed=1,
    )


def _node_service(arrays, offset, total, bounding_box):
    # Global accuracy frame: capacity, global-index coresets, shared box —
    # the by-construction reason federated answers equal the reference.
    return federated_node_service(
        arrays,
        offset=offset,
        total=total,
        bounding_box=bounding_box,
        seed=1,
        n_shards=2,
        eps=0.2,
        sample_size=8,
    )


class _Node:
    """One in-process node: a QueryService behind a real HTTP server."""

    def __init__(self, service):
        self.service = service
        self.httpd = make_server(self.service, host="127.0.0.1", port=0)
        self._serve()

    def _serve(self):
        self.thread = threading.Thread(
            target=self.httpd.serve_forever, daemon=True
        )
        self.thread.start()
        host, port = self.httpd.server_address
        self.url = f"http://{host}:{port}"
        self.port = port

    def kill(self):
        self.httpd.shutdown()
        self.httpd.server_close()

    def restart(self):
        """Rebind the same port (a healed node at the same address)."""
        self.httpd = make_server(
            self.service, host="127.0.0.1", port=self.port
        )
        self._serve()

    def close(self):
        self.kill()
        self.service.close()


@pytest.fixture(scope="module")
def lake():
    return synthetic_data_lake(
        N_TOTAL, DIM, np.random.default_rng(SEED), family="clustered",
        median_size=90,
    )


@pytest.fixture(scope="module")
def queries():
    return batched_query_workload(6, DIM, np.random.default_rng(SEED + 1))


@pytest.fixture(scope="module")
def reference(lake):
    """A single-node service over the whole lake: the exactness oracle."""
    svc = _service(lake)
    yield svc
    svc.close()


@pytest.fixture()
def nodes(lake):
    per = N_TOTAL // N_NODES
    box = Repository.from_arrays(lake).bounding_box()
    built = [
        _Node(_node_service(lake[i * per:(i + 1) * per], i * per, N_TOTAL, box))
        for i in range(N_NODES)
    ]
    yield built
    for node in built:
        try:
            node.close()
        except OSError:
            pass


def _register_all(coord, nodes):
    for node in nodes:
        ex = node.service.executor
        coord.add_node(
            node.url,
            synopses=list(ex.synopses),
            eps=ex.eps,
            eps_effective=ex.eps_effective,
        )


def _containment(result, exact_ids):
    must = set(result.indexes)
    maybe = (
        set(result.maybe_bitmap.to_list())
        if result.maybe_bitmap is not None
        else set()
    )
    exact = set(exact_ids)
    assert must <= exact, f"must ⊄ exact: {sorted(must - exact)}"
    assert exact <= must | maybe, (
        f"exact ⊄ must∪maybe: {sorted(exact - must - maybe)}"
    )


class TestCircuitBreaker:
    def _breaker(self, **kw):
        self.t = [0.0]
        kw.setdefault("threshold", 3)
        kw.setdefault("reset_s", 1.0)
        return CircuitBreaker(clock=lambda: self.t[0], **kw)

    def test_trips_after_consecutive_failures_only(self):
        b = self._breaker()
        b.record_failure()
        b.record_failure()
        b.record_success()  # streak broken
        b.record_failure()
        b.record_failure()
        assert b.state == "closed"
        b.record_failure()
        assert b.state == "open"
        assert b.snapshot()["trips"] == 1

    def test_open_rejects_until_reset_then_admits_one_probe(self):
        b = self._breaker(threshold=1)
        b.record_failure()
        assert not b.allow()
        self.t[0] = 0.99
        assert not b.allow()
        self.t[0] = 1.01
        assert b.allow()  # the half-open probe
        assert b.state == "half_open"
        assert not b.allow()  # second concurrent request still rejected

    def test_probe_success_closes(self):
        b = self._breaker(threshold=1)
        b.record_failure()
        self.t[0] = 2.0
        assert b.allow()
        b.record_success()
        assert b.state == "closed"
        assert b.allow() and b.allow()  # fully open for business

    def test_probe_failure_reopens_and_restarts_the_clock(self):
        b = self._breaker(threshold=1)
        b.record_failure()
        self.t[0] = 2.0
        assert b.allow()
        b.record_failure()
        assert b.state == "open"
        assert b.snapshot()["trips"] == 2
        self.t[0] = 2.5
        assert not b.allow()  # reset_s counts from the re-open
        self.t[0] = 3.5
        assert b.allow()

    def test_rejects_nonpositive_threshold(self):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=0)


class TestHealthyFederation:
    def test_equals_single_node_service(self, nodes, reference, queries):
        coord = FederatedCoordinator(seed=3)
        _register_all(coord, nodes)
        batch = coord.search_batch(list(queries), deadline_ms=10_000)
        single = reference.search_batch(list(queries))
        assert batch.coverage == 1.0
        for fed, ref in zip(batch.results, single):
            assert not fed.stats.get("degraded")
            assert sorted(fed.indexes) == sorted(ref.indexes)
        coord.close()

    def test_layout_is_contiguous_and_ordered(self, nodes):
        coord = FederatedCoordinator()
        receipts = [coord.add_node(n.url) for n in nodes]
        assert [r["offset"] for r in receipts] == [0, 6, 12]
        assert coord.n_datasets == N_TOTAL
        coord.remove_node(receipts[1]["node_id"])
        assert coord.n_datasets == N_TOTAL - 6
        # Node 2's slice slides down to keep the universe contiguous.
        batch = coord.search_batch(
            batched_query_workload(1, DIM, np.random.default_rng(0))
        )
        assert batch.results[0].bitmap.nbits == N_TOTAL - 6
        coord.close()

    def test_add_node_rejects_synopsis_count_mismatch(self, nodes):
        coord = FederatedCoordinator()
        ex = nodes[0].service.executor
        with pytest.raises(QueryError):
            coord.add_node(nodes[0].url, synopses=list(ex.synopses)[:-1])
        coord.close()

    def test_no_nodes_is_a_client_error(self):
        coord = FederatedCoordinator()
        (q,) = batched_query_workload(1, DIM, np.random.default_rng(0))
        with pytest.raises(QueryError):
            coord.search(q)
        coord.close()


class TestDegradedFederation:
    def test_dead_node_degrades_with_containment(
        self, nodes, reference, queries
    ):
        coord = FederatedCoordinator(
            seed=3, rpc_timeout_s=2.0, max_retries=1, backoff_base_s=0.01
        )
        _register_all(coord, nodes)
        nodes[1].kill()
        batch = coord.search_batch(list(queries), deadline_ms=10_000)
        assert batch.coverage == pytest.approx(2 / 3)
        statuses = {m["node_id"]: m["status"] for m in batch.nodes}
        assert statuses[1] == "unreachable"
        for fed, q in zip(batch.results, queries):
            assert fed.stats["degraded"]
            assert "node_unreachable" in fed.stats["degrade_reason"]
            _containment(fed, reference.search_batch([q])[0].indexes)
        coord.close()

    def test_dead_node_without_synopses_answers_full_maybe_band(
        self, nodes, queries
    ):
        coord = FederatedCoordinator(
            rpc_timeout_s=2.0, max_retries=0, backoff_base_s=0.01
        )
        for node in nodes:
            coord.add_node(node.url)  # no screens registered
        nodes[2].kill()
        batch = coord.search_batch([list(queries)[0]])
        result = batch.results[0]
        assert result.stats["degraded"]
        # The dead slice [12, 18) is entirely in the maybe band and
        # contributes nothing to must.
        dead = set(range(12, 18))
        assert dead <= set(result.maybe_bitmap.to_list())
        assert not dead & set(result.indexes)
        coord.close()

    def test_tiny_deadline_degrades_instead_of_failing(
        self, nodes, reference, queries
    ):
        coord = FederatedCoordinator(seed=3)
        _register_all(coord, nodes)
        q = list(queries)[0]
        batch = coord.search_batch([q], deadline_ms=1)
        result = batch.results[0]
        assert result.stats["degraded"]
        assert "budget_exhausted" in result.stats["degrade_reason"]
        _containment(result, reference.search_batch([q])[0].indexes)
        # Budget exhaustion is the caller's fault, not the nodes': no
        # breaker penalties accrued.
        for meta in coord.stats()["federation"]["nodes"]:
            assert meta["breaker"]["state"] == "closed"
        coord.close()

    def test_universe_drift_is_screened_not_mismerged(self, nodes, queries):
        coord = FederatedCoordinator(
            rpc_timeout_s=2.0, max_retries=0, backoff_base_s=0.01
        )
        # Lie about node 0's slice: it answers over 6 datasets but we
        # register 5.  The oversize answer must be rejected and screened,
        # never silently truncated into the wrong global bits.
        coord.add_node(nodes[0].url, n_datasets=5)
        coord.add_node(nodes[1].url)
        batch = coord.search_batch([list(queries)[0]])
        statuses = {m["node_id"]: m["status"] for m in batch.nodes}
        assert statuses[0] == "universe_drift"
        assert batch.results[0].stats["degraded"]
        coord.close()


class TestBreakerLifecycle:
    def test_trip_halfopen_close_recovery(self, nodes, reference, queries):
        coord = FederatedCoordinator(
            seed=3, rpc_timeout_s=2.0, max_retries=0,
            breaker_threshold=2, breaker_reset_s=0.3,
            backoff_base_s=0.01, hedge_delay_s=None,
        )
        _register_all(coord, nodes)
        q = list(queries)[0]
        exact = sorted(reference.search_batch([q])[0].indexes)

        # Fail every leg (node_rpc is process-global): two batches = two
        # consecutive failures per node = every breaker trips.
        faults.arm("node_rpc=raise")
        for _ in range(2):
            batch = coord.search_batch([q])
            assert batch.results[0].stats["degraded"]
        states = [
            m["breaker"]["state"]
            for m in coord.stats()["federation"]["nodes"]
        ]
        assert states == ["open", "open", "open"]

        # While open: no RPC even attempted (status breaker_open), still
        # a sound screened answer.
        faults.disarm()
        batch = coord.search_batch([q])
        assert {m["status"] for m in batch.nodes} == {"breaker_open"}
        _containment(batch.results[0], exact)

        # After reset_s the half-open probe goes through, closes the
        # breaker, and answers turn exact again.
        import time

        time.sleep(0.35)
        batch = coord.search_batch([q])
        assert not batch.results[0].stats.get("degraded")
        assert sorted(batch.results[0].indexes) == exact
        states = [
            m["breaker"]["state"]
            for m in coord.stats()["federation"]["nodes"]
        ]
        assert states == ["closed", "closed", "closed"]
        trips = coord.registry.counter_value(
            "repro_federation_breaker_trips_total", {"node": "0"}
        )
        assert trips == 1.0
        coord.close()


class TestCoordinatorHTTP:
    @pytest.fixture()
    def fed_url(self, nodes):
        coord = FederatedCoordinator(
            seed=3, rpc_timeout_s=2.0, max_retries=0, backoff_base_s=0.01
        )
        httpd = make_federation_server(coord, host="127.0.0.1", port=0)
        threading.Thread(target=httpd.serve_forever, daemon=True).start()
        host, port = httpd.server_address
        yield f"http://{host}:{port}", coord
        httpd.shutdown()
        httpd.server_close()
        coord.close()

    def _post(self, url, payload, method="POST"):
        req = urllib.request.Request(
            url, data=json.dumps(payload).encode(), method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(req, timeout=10) as resp:
                return resp.status, json.loads(resp.read())
        except urllib.error.HTTPError as exc:
            return exc.code, json.loads(exc.read())

    def _get(self, url):
        with urllib.request.urlopen(url, timeout=10) as resp:
            return resp.status, resp.read()

    def test_full_lifecycle_over_http(
        self, fed_url, nodes, lake, reference, queries
    ):
        url, _coord = fed_url
        # Register all nodes over the wire, synopses in serialized form.
        # The executor's own exact synopses hold raw data and have no wire
        # format by design; a marketplace seller publishes compact sketches
        # instead (here: quantile histograms over each slice).
        per = N_TOTAL // N_NODES
        rng = np.random.default_rng(SEED + 9)
        for ni, node in enumerate(nodes):
            sketches = [
                QuantileHistogramSynopsis(arr, rng=rng)
                for arr in lake[ni * per:(ni + 1) * per]
            ]
            status, receipt = self._post(
                f"{url}/nodes",
                {
                    "url": node.url,
                    "synopses": [synopsis_to_dict(s) for s in sketches],
                },
            )
            assert status == 200 and receipt["synopses_registered"]

        status, health = self._get(f"{url}/healthz")
        health = json.loads(health)
        assert health["n_nodes"] == N_NODES
        assert health["n_datasets"] == N_TOTAL

        q = list(queries)[0]
        exact = sorted(reference.search_batch([q])[0].indexes)
        status, body = self._post(
            f"{url}/search", {"expression": expression_to_json(q)}
        )
        assert status == 200
        assert sorted(body["indexes"]) == exact
        assert body["federation"]["coverage"] == 1.0

        # Kill a node: still 200, degraded fields on the wire.
        nodes[0].kill()
        status, body = self._post(
            f"{url}/search/batch",
            {
                "expressions": [expression_to_json(q)],
                "format": "bitset",
                "deadline_ms": 5000,
            },
        )
        assert status == 200
        one = body["results"][0]
        assert one["degraded"] and "maybe_bitset" in one
        assert body["federation"]["coverage"] == pytest.approx(2 / 3)

        # Deregister the corpse: answers come back exact over 12 datasets.
        dead_id = next(
            m["node_id"]
            for m in body["federation"]["nodes"]
            if m["status"] != "ok"
        )
        status, receipt = self._post(
            f"{url}/nodes", {"node_id": dead_id}, method="DELETE"
        )
        assert status == 200 and receipt["removed"]
        status, body = self._post(
            f"{url}/search", {"expression": expression_to_json(q)}
        )
        assert status == 200
        assert "degraded" not in body
        assert body["federation"]["n_datasets"] == N_TOTAL - 6

    def test_stats_and_metrics_expose_node_health(self, fed_url, nodes, queries):
        url, _coord = fed_url
        for node in nodes:
            self._post(f"{url}/nodes", {"url": node.url})
        q = list(queries)[0]
        self._post(
            f"{url}/search/batch",
            {"expressions": [expression_to_json(q)]},
        )
        status, stats = self._get(f"{url}/stats")
        stats = json.loads(stats)
        per_node = stats["federation"]["nodes"]
        assert len(per_node) == N_NODES
        assert all(n["breaker"]["state"] == "closed" for n in per_node)
        assert all(n["ok_calls"] >= 1 for n in per_node)
        status, text = self._get(f"{url}/metrics")
        text = text.decode()
        for metric in (
            "repro_federation_node_seconds",
            "repro_federation_requests_total",
            "repro_federation_stage_seconds",
            "repro_federation_nodes 3",
        ):
            assert metric in text, metric

    def test_client_errors_are_400_not_500(self, fed_url):
        url, _coord = fed_url
        status, body = self._post(f"{url}/nodes", {"url": ""})
        assert status == 400
        status, body = self._post(
            f"{url}/nodes", {"node_id": 99}, method="DELETE"
        )
        assert status == 400
        status, body = self._post(f"{url}/search/batch", {"expressions": []})
        assert status == 400
        status, body = self._post(
            f"{url}/search",
            {"expression": {"op": "nonsense"}},
        )
        assert status == 400


class TestTracing:
    def test_spans_cover_scatter_gather_merge(self, nodes, queries):
        coord = FederatedCoordinator(seed=3, tracing=True)
        _register_all(coord, nodes)
        batch = coord.search_batch([list(queries)[0]])
        assert batch.trace is not None
        assert batch.trace["name"] == "federated_batch"
        children = {c["name"] for c in batch.trace.get("children", [])}
        assert {"scatter", "merge"} <= children
        meta = batch.meta()
        assert "trace" in meta
        coord.close()
