"""Fork-gated tests for the pre-forked multi-process supervisor.

Covers the ISSUE-8 serving contract: N workers on one load-balanced
port over a shared mmap snapshot, single-writer ingest at worker 0
(siblings answer 409), and generation-bump propagation through the
watermark file.  Skipped cleanly on platforms without ``os.fork``.
"""

import json
import os
import signal
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core.framework import Repository
from repro.errors import SnapshotError
from repro.service import QueryService
from repro.service.server import expression_to_json
from repro.service.supervisor import (
    ServiceSupervisor,
    _WorkerSlot,
    fork_available,
    read_watermark,
    watermark_corrupt_reads,
    watermark_path,
    write_watermark,
)
from repro.workloads.generators import synthetic_data_lake
from repro.workloads.queries import batched_query_workload

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="multi-process serving needs os.fork"
)

SEED = 23
DIM = 1


def _request(url, payload=None, method=None):
    data = None if payload is None else json.dumps(payload).encode()
    req = urllib.request.Request(
        url, data=data, method=method,
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(req, timeout=15) as resp:
        return json.loads(resp.read())


@pytest.fixture(scope="module")
def workload():
    lake = synthetic_data_lake(
        10, DIM, np.random.default_rng(SEED), median_size=60
    )
    queries = batched_query_workload(5, DIM, np.random.default_rng(SEED + 1))
    return lake, queries


@pytest.fixture()
def snapshot(workload, tmp_path):
    lake, queries = workload
    svc = QueryService(
        repository=Repository.from_arrays(lake),
        n_shards=2,
        engine="columnar",
        seed=SEED,
        eps=0.2,
        sample_size=12,
        capacity=24,
    )
    expected = [r.indexes for r in svc.search_batch(queries)]
    path = tmp_path / "svc.snap"
    svc.save(path)
    svc.close()
    return path, queries, expected


class TestSupervisor:
    def test_serves_identical_answers_across_workers(self, snapshot):
        path, queries, expected = snapshot
        with ServiceSupervisor(path, workers=2, poll_interval=0.1) as sup:
            host, port = sup.start()
            url = f"http://{host}:{port}"
            payload = {"expressions": [expression_to_json(q) for q in queries]}
            worker_ids = set()
            for _ in range(12):
                out = _request(f"{url}/search/batch", payload)
                assert [r["indexes"] for r in out["results"]] == expected
                health = _request(f"{url}/healthz")
                worker_ids.add(health["worker_id"])
                assert health["worker_count"] == 2
                assert health["snapshot_generation"] == 0
            # SO_REUSEPORT load-balancing should reach both workers; the
            # kernel hashes per-connection, so 12 fresh connections
            # essentially always spread (this would only flake if the
            # kernel pinned every connection to one worker).
            assert len(worker_ids) == 2

    def test_ingest_bumps_generation_on_every_worker(self, snapshot):
        path, queries, expected = snapshot
        with ServiceSupervisor(path, workers=2, poll_interval=0.1) as sup:
            host, port = sup.start()
            url = f"http://{host}:{port}"
            new = np.random.default_rng(SEED + 2).normal(size=(30, DIM))
            payload = {"datasets": [new.tolist()]}
            receipt = None
            for _ in range(40):  # public port round-robins; find the writer
                try:
                    receipt = _request(f"{url}/datasets", payload)
                    break
                except urllib.error.HTTPError as exc:
                    if exc.code != 409:
                        raise
                    time.sleep(0.05)
            assert receipt is not None, "never reached the writer worker"
            assert receipt["indexes"] == [10]

            deadline = time.time() + 15
            stats = sup.aggregate_stats()
            while time.time() < deadline:
                stats = sup.aggregate_stats()
                if all(g >= 1 for g in stats["generations"]):
                    break
                time.sleep(0.1)
            assert all(g >= 1 for g in stats["generations"]), (
                f"generation bump did not propagate: {stats['generations']}"
            )
            assert stats["worker_count"] == 2
            # The reloaded sibling serves the post-ingest dataset count.
            for w in stats["workers"]:
                assert w["n_datasets"] == 11
            assert read_watermark(path) >= 1

    def test_non_writer_rejects_mutations(self, snapshot):
        path, queries, expected = snapshot
        with ServiceSupervisor(path, workers=2, poll_interval=0.5) as sup:
            sup.start()
            # Worker admin ports are direct (not load-balanced): worker 0
            # is the writer, worker 1 must refuse with 409.
            reader_port = sup.worker_ports[1]
            payload = {"indexes": [0]}
            with pytest.raises(urllib.error.HTTPError) as exc_info:
                _request(
                    f"http://{sup.host}:{reader_port}/datasets",
                    payload,
                    method="DELETE",
                )
            assert exc_info.value.code == 409
            body = json.loads(exc_info.value.read())
            assert "read-only" in body["error"]

    def test_aggregate_metrics_one_block_per_worker(self, snapshot):
        path, queries, expected = snapshot
        with ServiceSupervisor(path, workers=2, poll_interval=0.5) as sup:
            sup.start()
            text = sup.aggregate_metrics()
            assert text.count("# supervisor worker") == 2

    def test_stop_is_idempotent_and_reaps_workers(self, snapshot):
        path, _queries, _expected = snapshot
        sup = ServiceSupervisor(path, workers=2, poll_interval=0.5)
        sup.start()
        pids = list(sup.pids)
        sup.stop()
        sup.stop()
        for pid in pids:
            with pytest.raises(OSError):
                os.kill(pid, 0)  # ESRCH: fully reaped, not a zombie

    def test_stop_safe_when_workers_already_died(self, snapshot):
        path, _queries, _expected = snapshot
        sup = ServiceSupervisor(
            path, workers=2, poll_interval=0.5, respawn=False,
            monitor_interval=0.05,
        )
        sup.start()
        for pid in list(sup.pids):
            os.kill(pid, signal.SIGKILL)
        time.sleep(0.3)  # let the monitor reap them first
        sup.stop()  # must not raise on the already-gone fleet
        sup.stop()

    def test_dead_worker_flagged_not_fatal_in_aggregates(self, snapshot):
        path, _queries, _expected = snapshot
        with ServiceSupervisor(
            path, workers=2, poll_interval=0.5, respawn=False,
            monitor_interval=0.05, fetch_timeout=2.0,
        ) as sup:
            sup.start()
            os.kill(sup.pids[1], signal.SIGKILL)
            deadline = time.time() + 10
            while time.time() < deadline:
                if not sup.health()["workers"][1]["alive"]:
                    break
                time.sleep(0.05)
            health = sup.health()
            assert health["status"] == "degraded"
            assert health["workers"][0]["alive"]
            assert not health["workers"][1]["alive"]
            stats = sup.aggregate_stats()
            assert stats["worker_count"] == 2
            assert stats["unreachable"] == [1]
            assert stats["workers"][1]["status"] == "unreachable"
            text = sup.aggregate_metrics()
            assert "# supervisor worker 1 unreachable" in text
            assert "# supervisor worker 0\n" in text

    def test_parent_admin_endpoint_reports_fleet_health(self, snapshot):
        path, queries, _expected = snapshot
        with ServiceSupervisor(path, workers=2, poll_interval=0.5) as sup:
            host, _port = sup.start()
            assert sup.admin_port is not None
            url = f"http://{host}:{sup.admin_port}"
            health = _request(f"{url}/healthz")
            assert health["status"] == "ok"
            assert [w["worker_id"] for w in health["workers"]] == [0, 1]
            assert health["writer_id"] == 0
            stats = _request(f"{url}/stats")
            assert stats["worker_count"] == 2

    def test_fetch_timeout_knob(self, snapshot):
        path, _queries, _expected = snapshot
        sup = ServiceSupervisor(path, workers=2, fetch_timeout=3.5)
        assert sup.fetch_timeout == 3.5


class TestWatermark:
    def test_round_trip(self, tmp_path):
        snap = tmp_path / "x.snap"
        assert read_watermark(snap) is None
        write_watermark(snap, 3)
        assert watermark_path(snap) == f"{snap}.gen"
        assert read_watermark(snap) == 3

    def test_corrupt_watermark_reads_none(self, tmp_path):
        snap = tmp_path / "x.snap"
        with open(watermark_path(snap), "w", encoding="utf-8") as f:
            f.write("{half a json")
        assert read_watermark(snap) is None

    @pytest.mark.parametrize(
        "garbage",
        [
            b"\x00\xff\xfe\x8b random binary \x01\x02",  # torn binary write
            b"",                                          # zero-length file
            b'{"generation": "three"}',                   # wrong type
            b'{"generation": -2}',                        # negative
            b'{"generation": true}',                      # bool is not an int
            b'{"wrong_key": 3}',                          # schema drift
            b"[1, 2, 3]",                                 # not even an object
            b"\xff\xfe garbage that is not utf-8 \x80",   # undecodable
        ],
    )
    def test_garbage_watermark_reads_none_and_counts(self, tmp_path, garbage):
        snap = tmp_path / "x.snap"
        with open(watermark_path(snap), "wb") as f:
            f.write(garbage)
        before = watermark_corrupt_reads()
        assert read_watermark(snap) is None
        assert watermark_corrupt_reads() == before + 1
        # A corrupt read never poisons later good reads.
        write_watermark(snap, 7)
        assert read_watermark(snap) == 7
        assert watermark_corrupt_reads() == before + 1

    def test_missing_watermark_is_not_counted_corrupt(self, tmp_path):
        before = watermark_corrupt_reads()
        assert read_watermark(tmp_path / "nope.snap") is None
        assert watermark_corrupt_reads() == before


def test_bad_snapshot_fails_start(tmp_path):
    bogus = tmp_path / "bogus.snap"
    bogus.write_bytes(b"NOTASNAP" + b"\x00" * 64)
    with pytest.raises(SnapshotError):
        ServiceSupervisor(bogus, workers=2).start()


class TestRespawnJitter:
    """Respawn scheduling stretches each backoff by a random factor in
    [1, 1 + backoff_jitter] so a fleet that died together does not
    re-fork (and potentially re-crash) in lockstep."""

    def _supervisor(self, **kw):
        # Constructor only; never started, so no snapshot file is needed.
        return ServiceSupervisor("unused.snap", workers=2, **kw)

    def _slot(self, sup, worker_id=0):
        slot = _WorkerSlot(worker_id, pid=0, admin_port=0,
                           backoff=sup.backoff_base)
        slot.alive = False
        return slot

    def test_simultaneous_crashes_get_distinct_respawn_times(self):
        sup = self._supervisor(backoff_seed=123)
        now = 100.0
        times = []
        for wid in range(8):
            slot = self._slot(sup, wid)
            sup._schedule_respawn_locked(slot, now)
            times.append(slot.next_respawn)
        assert len(set(times)) == len(times)  # no lockstep
        lo = now + sup.backoff_base
        hi = now + sup.backoff_base * (1.0 + sup.backoff_jitter)
        assert all(lo <= t <= hi for t in times)

    def test_zero_jitter_restores_deterministic_delays(self):
        sup = self._supervisor(backoff_jitter=0.0)
        slot = self._slot(sup)
        sup._schedule_respawn_locked(slot, 50.0)
        assert slot.next_respawn == 50.0 + sup.backoff_base
        assert slot.backoff == sup.backoff_base * 2.0

    def test_seed_pins_the_schedule(self):
        a, b = (self._supervisor(backoff_seed=7) for _ in range(2))
        sa, sb = self._slot(a), self._slot(b)
        for now in (10.0, 20.0, 30.0):
            a._schedule_respawn_locked(sa, now)
            b._schedule_respawn_locked(sb, now)
            assert sa.next_respawn == sb.next_respawn
            assert sa.backoff == sb.backoff

    def test_backoff_still_doubles_to_cap_under_jitter(self):
        sup = self._supervisor(backoff_seed=1, backoff_base=0.25,
                               backoff_max=1.0)
        slot = self._slot(sup)
        ladder = []
        for _ in range(5):
            ladder.append(slot.backoff)
            sup._schedule_respawn_locked(slot, 0.0)
        assert ladder == [0.25, 0.5, 1.0, 1.0, 1.0]

    def test_rejects_out_of_range_jitter(self):
        with pytest.raises(ValueError):
            self._supervisor(backoff_jitter=1.5)
