"""Admission control: the inflight gate and its 429 shedding behavior."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core.framework import Repository
from repro.errors import ConstructionError
from repro.service import QueryService, faults
from repro.service.admission import AdmissionGate
from repro.service.server import expression_to_json, make_server
from repro.workloads.generators import synthetic_data_lake
from repro.workloads.queries import batched_query_workload

SEED = 47
DIM = 1


class TestGateUnit:
    def test_admits_up_to_max_inflight(self):
        gate = AdmissionGate(max_inflight=2)
        assert gate.try_acquire()
        assert gate.try_acquire()
        assert not gate.try_acquire()
        gate.release()
        assert gate.try_acquire()

    def test_release_wakes_queued_waiter(self):
        gate = AdmissionGate(max_inflight=1, max_queue=1, queue_timeout_s=5.0)
        assert gate.try_acquire()
        got = []

        def waiter():
            got.append(gate.try_acquire())

        t = threading.Thread(target=waiter)
        t.start()
        # the waiter parks in the queue, then the release admits it
        deadline = 50
        while gate.snapshot()["queued"] == 0 and deadline:
            deadline -= 1
            threading.Event().wait(0.01)
        gate.release()
        t.join(timeout=5)
        assert got == [True]

    def test_queue_overflow_sheds_immediately(self):
        gate = AdmissionGate(max_inflight=1, max_queue=0)
        assert gate.try_acquire()
        assert not gate.try_acquire()
        assert gate.snapshot()["shed"] == 1

    def test_queue_timeout_sheds(self):
        gate = AdmissionGate(
            max_inflight=1, max_queue=1, queue_timeout_s=0.05
        )
        assert gate.try_acquire()
        assert not gate.try_acquire()  # waits 50ms, then shed
        snap = gate.snapshot()
        assert snap["shed"] == 1
        assert snap["queued_total"] == 1
        assert snap["queued"] == 0

    @pytest.mark.parametrize(
        "kwargs", [{"max_inflight": 0}, {"max_inflight": 1, "max_queue": -1}]
    )
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(ConstructionError):
            AdmissionGate(**kwargs)

    def test_snapshot_counters(self):
        gate = AdmissionGate(max_inflight=1)
        gate.try_acquire()
        gate.try_acquire()
        gate.release()
        snap = gate.snapshot()
        assert snap["admitted"] == 1
        assert snap["shed"] == 1
        assert snap["inflight"] == 0


class TestServerIntegration:
    @pytest.fixture()
    def server(self):
        lake = synthetic_data_lake(
            8, DIM, np.random.default_rng(SEED), median_size=60
        )
        svc = QueryService(
            repository=Repository.from_arrays(lake),
            n_shards=2,
            eps=0.2,
            sample_size=8,
            seed=SEED,
        )
        gate = AdmissionGate(max_inflight=1, max_queue=0, retry_after_s=2.0)
        httpd = make_server(svc, port=0, gate=gate)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        yield f"http://127.0.0.1:{httpd.server_address[1]}", svc
        faults.disarm()
        httpd.shutdown()
        httpd.server_close()
        svc.close()

    def _post(self, url, payload):
        req = urllib.request.Request(
            url,
            data=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(req, timeout=15) as resp:
                return resp.status, json.loads(resp.read()), dict(resp.headers)
        except urllib.error.HTTPError as exc:
            return exc.code, json.loads(exc.read()), dict(exc.headers)

    def test_overload_sheds_with_429_and_retry_after(self, server):
        url, svc = server
        (query,) = batched_query_workload(
            1, DIM, np.random.default_rng(SEED + 1)
        )
        payload = {"expression": expression_to_json(query)}
        # Park one request in the handler so the gate is full, then race
        # two more against it: with max_inflight=1 and no queue at least
        # one must shed (deterministically, since the parked request
        # sleeps far longer than the race window).
        faults.arm("handler=sleep:0.6")
        results = []

        def worker():
            results.append(self._post(f"{url}/search", payload))

        threads = [threading.Thread(target=worker) for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        faults.disarm()
        codes = sorted(r[0] for r in results)
        assert codes.count(200) >= 1
        assert codes.count(429) >= 1
        shed = next(r for r in results if r[0] == 429)
        _code, body, headers = shed
        assert "retry" in body["error"] or "capacity" in body["error"]
        assert body["retry_after_s"] == 2.0
        assert headers.get("Retry-After") == "2"

    def test_health_and_stats_are_never_gated(self, server):
        url, svc = server
        (query,) = batched_query_workload(
            1, DIM, np.random.default_rng(SEED + 2)
        )
        payload = {"expression": expression_to_json(query)}
        faults.arm("handler=sleep:0.6")
        blocker = threading.Thread(
            target=lambda: self._post(f"{url}/search", payload)
        )
        blocker.start()
        try:
            # While the only slot is taken, monitoring must still answer.
            with urllib.request.urlopen(f"{url}/healthz", timeout=5) as resp:
                assert resp.status == 200
            with urllib.request.urlopen(f"{url}/stats", timeout=5) as resp:
                stats = json.loads(resp.read())
            assert stats["admission"]["max_inflight"] == 1
        finally:
            blocker.join()
            faults.disarm()

    def test_shed_counter_in_stats_and_metrics(self, server):
        url, svc = server
        (query,) = batched_query_workload(
            1, DIM, np.random.default_rng(SEED + 3)
        )
        payload = {"expression": expression_to_json(query)}
        faults.arm("handler=sleep:0.6")
        results = []

        def worker():
            results.append(self._post(f"{url}/search", payload))

        threads = [threading.Thread(target=worker) for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        faults.disarm()
        n_shed = sum(1 for r in results if r[0] == 429)
        assert n_shed >= 1
        with urllib.request.urlopen(f"{url}/stats", timeout=5) as resp:
            stats = json.loads(resp.read())
        assert stats["resilience"]["requests_shed"] >= n_shed
        assert stats["admission"]["shed"] >= n_shed
        with urllib.request.urlopen(f"{url}/metrics", timeout=5) as resp:
            text = resp.read().decode()
        assert "repro_requests_shed_total" in text


class TestRetryAfterClient:
    """The bench/chaos HTTP client treats 429 + Retry-After as 'wait and
    resend', so shed requests succeed on the retry instead of polluting
    the chaos suites' status counts."""

    def _shedding_server(self, shed_first_n: int, retry_after: str = "1"):
        """A tiny server answering 429 (with Retry-After) N times, then 200."""
        from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

        seen = {"posts": 0}

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, fmt, *args):
                pass

            def do_POST(self):
                self.rfile.read(int(self.headers.get("Content-Length", 0)))
                seen["posts"] += 1
                if seen["posts"] <= shed_first_n:
                    body = b'{"error": "overloaded"}'
                    self.send_response(429)
                    self.send_header("Retry-After", retry_after)
                else:
                    body = b'{"ok": true}'
                    self.send_response(200)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

        httpd = ThreadingHTTPServer(("127.0.0.1", 0), Handler)
        threading.Thread(target=httpd.serve_forever, daemon=True).start()
        host, port = httpd.server_address
        return httpd, f"http://{host}:{port}/search/batch", seen

    def test_retries_past_429_and_succeeds(self):
        from repro.bench.harness import http_post_json

        httpd, url, seen = self._shedding_server(2, retry_after="0")
        try:
            status = http_post_json(url, b"{}", timeout=5, retries_429=3)
        finally:
            httpd.shutdown()
            httpd.server_close()
        assert status == 200
        assert seen["posts"] == 3  # two sheds honored, third send won

    def test_gives_up_after_retry_budget(self):
        from repro.bench.harness import http_post_json

        httpd, url, seen = self._shedding_server(10, retry_after="0")
        try:
            status = http_post_json(url, b"{}", timeout=5, retries_429=2)
        finally:
            httpd.shutdown()
            httpd.server_close()
        assert status == 429
        assert seen["posts"] == 3  # initial send + 2 retries

    def test_stop_event_aborts_backoff_sleep(self):
        import time as _time

        from repro.bench.harness import http_post_json

        # Retry-After of 30s must not hold the client hostage when the
        # traffic loop is being torn down.
        httpd, url, _seen = self._shedding_server(10, retry_after="30")
        stop = threading.Event()
        threading.Timer(0.2, stop.set).start()
        t0 = _time.perf_counter()
        try:
            status = http_post_json(
                url, b"{}", timeout=5, retries_429=3,
                retry_after_cap_s=30.0, stop=stop,
            )
        finally:
            httpd.shutdown()
            httpd.server_close()
        assert status == 429
        assert _time.perf_counter() - t0 < 5.0
