"""Tests for live repository mutation: delta-shard ingestion with warm-cache
reuse, removal masks, and the rebuild fallbacks.

The load-bearing property is *mutation equivalence*: after
``add_datasets`` / ``remove_datasets``, every answer must equal a freshly
built engine over the mutated repository.  The comparison services share the
accuracy contract (``capacity``, bounding box, seed), because a serving
system freezes its precision guarantee at build time — live ingestion must
not silently re-derive it.
"""

import numpy as np
import pytest

from repro.core.framework import Repository
from repro.errors import QueryError
from repro.service import QueryService
from repro.workloads.generators import synthetic_data_lake
from repro.workloads.queries import batched_query_workload, mutation_workload

N0 = 16
N_ADD = 4
EPS = 0.2
SAMPLE_SIZE = 12
SEED = 17
CAPACITY = 40


def make_lake(seed: int, n: int = N0 + N_ADD):
    return synthetic_data_lake(
        n, 1, np.random.default_rng(seed), family="clustered", median_size=120
    )


def make_queries(seed: int, n: int = 20, pref_fraction: float = 0.3):
    return batched_query_workload(
        n,
        1,
        np.random.default_rng(seed),
        pref_fraction=pref_fraction,
        duplicate_leaf_rate=0.5,
        max_leaves=3,
    )


def make_service(lake, box, n_shards: int, **overrides) -> QueryService:
    kwargs = dict(
        repository=Repository.from_arrays(lake),
        n_shards=n_shards,
        eps=EPS,
        sample_size=SAMPLE_SIZE,
        seed=SEED,
        bounding_box=box,
        capacity=CAPACITY,
    )
    kwargs.update(overrides)
    return QueryService(**kwargs)


class TestAddEquivalence:
    """service.add_datasets(new) answers == fresh build over the union."""

    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    def test_matches_fresh_union_service(self, n_shards):
        lake = make_lake(2)
        box = Repository.from_arrays(lake).bounding_box()
        queries = make_queries(3)
        with make_service(lake[:N0], box, n_shards) as svc:
            svc.search_batch(queries)  # warm the cache pre-ingest
            receipt = svc.add_datasets(lake[N0:])
            assert receipt["indexes"] == list(range(N0, N0 + N_ADD))
            assert receipt["rebuilt"] is False
            assert svc.executor.delta_size == N_ADD
            got = [r.indexes for r in svc.search_batch(queries)]
        with make_service(lake, box, 1) as fresh:
            expected = [r.indexes for r in fresh.search_batch(queries)]
        assert got == expected

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_property_over_seeds(self, seed):
        lake = make_lake(10 + seed)
        box = Repository.from_arrays(lake).bounding_box()
        queries = make_queries(20 + seed)
        with make_service(lake[:N0], box, 2) as svc:
            svc.add_datasets(lake[N0:])
            got = [r.indexes for r in svc.search_batch(queries)]
        with make_service(lake, box, 1) as fresh:
            expected = [r.indexes for r in fresh.search_batch(queries)]
        assert got == expected

    def test_ptile_only_and_pref_only(self):
        lake = make_lake(4)
        box = Repository.from_arrays(lake).bounding_box()
        ptile_only = make_queries(5, pref_fraction=0.0)
        pref_only = make_queries(6, pref_fraction=1.0)
        with make_service(lake[:N0], box, 2) as svc:
            svc.search_batch(ptile_only + pref_only)
            svc.add_datasets(lake[N0:])
            got = [r.indexes for r in svc.search_batch(ptile_only + pref_only)]
        with make_service(lake, box, 1) as fresh:
            expected = [
                r.indexes for r in fresh.search_batch(ptile_only + pref_only)
            ]
        assert got == expected

    def test_incremental_adds_extend_existing_delta_shard(self):
        # Two ingest events: the second must insert into the existing delta
        # engine (no rebuild) and still match the fresh union build.
        lake = make_lake(7)
        box = Repository.from_arrays(lake).bounding_box()
        queries = make_queries(8)
        with make_service(lake[:N0], box, 4) as svc:
            svc.add_datasets(lake[N0:N0 + 2])
            svc.search_batch(queries)  # forces the delta engine to build
            receipt = svc.add_datasets(lake[N0 + 2:])
            assert receipt["rebuilt"] is False
            assert svc.executor.delta_size == N_ADD
            got = [r.indexes for r in svc.search_batch(queries)]
        with make_service(lake, box, 1) as fresh:
            expected = [r.indexes for r in fresh.search_batch(queries)]
        assert got == expected

    def test_recall_after_ingest(self):
        lake = make_lake(5)
        box = Repository.from_arrays(lake).bounding_box()
        with make_service(lake[:N0], box, 2) as svc:
            svc.add_datasets(lake[N0:])
            for q in make_queries(9, n=8):
                assert svc.ground_truth(q) <= set(svc.search(q).indexes)


class TestWarmCache:
    """Ingestion must not flush the cache: repeats are hits or upgrades."""

    def test_no_invalidation_and_no_new_misses(self):
        lake = make_lake(2)
        box = Repository.from_arrays(lake).bounding_box()
        queries = make_queries(3)
        with make_service(lake[:N0], box, 2) as svc:
            svc.search_batch(queries)
            misses_before = svc.cache.stats.misses
            generation = svc.cache.generation
            svc.add_datasets(lake[N0:])
            svc.search_batch(queries)  # every leaf is a hit or an upgrade
            assert svc.cache.generation == generation
            assert svc.cache.stats.invalidations == 0
            assert svc.cache.stats.misses == misses_before
            assert svc.cache.stats.upgrades > 0
            assert svc.cache.stats.hit_rate > 0.0

    def test_upgraded_entries_serve_as_full_hits_afterwards(self):
        lake = make_lake(2)
        box = Repository.from_arrays(lake).bounding_box()
        queries = make_queries(3)
        with make_service(lake[:N0], box, 2) as svc:
            svc.search_batch(queries)
            svc.add_datasets(lake[N0:])
            svc.search_batch(queries)  # upgrades
            upgrades_after_first = svc.cache.stats.upgrades
            delta_evals = svc.executor.stats["delta_evals"]
            svc.search_batch(queries)  # now watermark-current: pure hits
            assert svc.cache.stats.upgrades == upgrades_after_first
            assert svc.executor.stats["delta_evals"] == delta_evals

    def test_upgrade_stats_reported_per_query(self):
        lake = make_lake(2)
        box = Repository.from_arrays(lake).bounding_box()
        with make_service(lake[:N0], box, 2) as svc:
            expr = make_queries(4, n=1)[0]
            svc.search(expr)
            svc.add_datasets(lake[N0:])
            result = svc.search(expr)
            n_upgraded = result.stats["cache_upgrades"]
            assert n_upgraded == result.stats["n_leaves_unique"]
            assert svc.telemetry.summary()["cache_upgrades"] == n_upgraded


class TestRemoveEquivalence:
    def test_removed_never_reported_and_matches_fresh_build(self):
        # A fresh service over the surviving datasets answers with compacted
        # positions 0..n'-1; dataset identity is carried by the seeded
        # synopsis wrappers (coresets are a function of the original global
        # index), so remapping positions back must reproduce the masked
        # answers exactly.
        lake = make_lake(6)
        removed = [3, 7, 11]
        kept = [i for i in range(N0 + N_ADD) if i not in removed]
        box = Repository.from_arrays(lake).bounding_box()
        queries = make_queries(12)
        with make_service(lake[:N0], box, 2) as svc:
            svc.search_batch(queries)  # warm pre-mutation
            svc.add_datasets(lake[N0:])
            receipt = svc.remove_datasets(removed)
            assert receipt["n_live"] == N0 + N_ADD - len(removed)
            got = [r.indexes for r in svc.search_batch(queries)]
        assert all(i not in answer for i in removed for answer in got)

        with make_service(lake, box, 1) as donor:
            synopses = [donor.executor.synopses[i] for i in kept]
        with QueryService(
            synopses=synopses,
            n_shards=1,
            eps=EPS,
            sample_size=SAMPLE_SIZE,
            seed=SEED,
            bounding_box=box,
            capacity=CAPACITY,
        ) as fresh:
            remapped = [
                sorted(kept[j] for j in r.indexes)
                for r in fresh.search_batch(queries)
            ]
        assert got == remapped

    def test_mask_survives_rebuild_and_compacts_engines(self):
        lake = make_lake(6)
        box = Repository.from_arrays(lake).bounding_box()
        queries = make_queries(12)
        with make_service(lake, box, 2) as svc:
            before = [r.indexes for r in svc.search_batch(queries)]
            svc.remove_datasets([0, 5])
            masked = [r.indexes for r in svc.search_batch(queries)]
            svc.rebuild()
            assert svc.executor.removed == frozenset({0, 5})
            # Tombstones are compacted out of the shard engines ...
            assert sum(svc.executor.shard_sizes()) == len(lake) - 2
            # ... while indexes stay stable identities.
            after = [r.indexes for r in svc.search_batch(queries)]
        assert masked == [sorted(set(b) - {0, 5}) for b in before]
        assert after == masked

    def test_explicit_rebuild_swap_resets_mask(self):
        # rebuild(repository=...) swaps in a new identity space: index 2 of
        # the new data has nothing to do with the previously removed 2.  A
        # smaller repository than the tombstoned index must also work.
        lake = make_lake(6)
        box = Repository.from_arrays(lake).bounding_box()
        with make_service(lake[:10], box, 2) as svc:
            svc.remove_datasets([2, 9])
            svc.rebuild(repository=Repository.from_arrays(lake[:5]))
            assert svc.executor.removed == frozenset()
            assert svc.n_datasets == 5 and svc.n_live == 5
            q = make_queries(17, n=1, pref_fraction=0.0)[0]
            assert svc.ground_truth(q) <= set(svc.search(q).indexes)

    def test_remove_validation(self):
        lake = make_lake(6)
        box = Repository.from_arrays(lake).bounding_box()
        with make_service(lake[:4], box, 2) as svc:
            with pytest.raises(QueryError):
                svc.remove_datasets([99])
            svc.remove_datasets([1])
            with pytest.raises(QueryError):
                svc.remove_datasets([1])  # already removed
            with pytest.raises(QueryError):
                svc.remove_datasets([0, 2, 3])  # would empty the repository

    def test_ground_truth_masks_removed(self):
        lake = make_lake(6)
        box = Repository.from_arrays(lake).bounding_box()
        with make_service(lake[:8], box, 2) as svc:
            q = make_queries(7, n=1)[0]
            truth_before = svc.ground_truth(q)
            svc.remove_datasets([2])
            assert svc.ground_truth(q) == truth_before - {2}


class TestRebuildFallbacks:
    def test_rebalance_threshold_folds_delta(self):
        lake = make_lake(8)
        box = Repository.from_arrays(lake).bounding_box()
        queries = make_queries(13)
        # 8 base datasets over 2 shards: mean shard size 4, so adding 6
        # crosses the threshold and triggers the full rebuild path.
        with make_service(lake[:8], box, 2) as svc:
            svc.search_batch(queries)
            receipt = svc.add_datasets(lake[8:14])
            assert receipt["rebuilt"] is True and receipt["reason"] == "rebalance"
            assert svc.executor.delta_size == 0
            assert svc.cache.generation >= 1  # rebuilds do flush
            got = [r.indexes for r in svc.search_batch(queries)]
        with make_service(lake[:14], box, 1) as fresh:
            expected = [r.indexes for r in fresh.search_batch(queries)]
        assert got == expected

    def test_out_of_box_data_falls_back_to_rebuild(self):
        lake = make_lake(9)
        queries = make_queries(14)
        far = np.random.default_rng(0).uniform(50.0, 60.0, size=(80, 1))
        # No explicit box: the service derives it from the initial
        # repository, the far-away dataset cannot enter the delta shard,
        # and the rebuild re-derives a covering box.
        with make_service(lake[:N0], None, 2) as svc:
            svc.search_batch(queries)
            receipt = svc.add_datasets([far])
            assert receipt["rebuilt"] is True
            assert receipt["reason"] == "bounding_box"
            got = [r.indexes for r in svc.search_batch(queries)]
        with make_service(lake[:N0] + [far], None, 1) as fresh:
            expected = [r.indexes for r in fresh.search_batch(queries)]
        assert got == expected

    def test_add_validation(self):
        lake = make_lake(2)
        box = Repository.from_arrays(lake).bounding_box()
        with make_service(lake[:4], box, 2) as svc:
            with pytest.raises(QueryError):
                svc.add_datasets()  # nothing given
            from repro.synopsis.exact import ExactSynopsis

            with pytest.raises(QueryError):
                # repository-backed services need raw datasets for truth
                svc.add_datasets(synopses=[ExactSynopsis(lake[5])])

    def test_explicitly_pinned_box_refuses_out_of_box_data(self):
        from repro.errors import ConstructionError

        lake = make_lake(3)
        box = Repository.from_arrays(lake).bounding_box()
        far = np.random.default_rng(1).uniform(50.0, 60.0, size=(80, 1))
        with make_service(lake[:8], box, 2) as svc:
            n_before = svc.n_datasets
            with pytest.raises(ConstructionError):
                svc.add_datasets([far])
            # The refusal is atomic: nothing was ingested.
            assert svc.n_datasets == n_before and svc.executor.delta_size == 0


class TestConcurrentChurn:
    def test_queries_race_ingestion_without_corruption(self):
        """Queries deliberately skip the mutation lock; racing them against
        live ingests must neither crash nor poison the cache (an entry's
        watermark must never claim datasets its answer is missing)."""
        import threading

        lake = make_lake(12, n=N0 + 8)
        box = Repository.from_arrays(lake).bounding_box()
        queries = make_queries(15, n=6)
        errors: list = []
        with make_service(lake[:N0], box, 2) as svc:
            svc.search_batch(queries)

            def reader():
                try:
                    for _ in range(6):
                        svc.search_batch(queries)
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)

            threads = [threading.Thread(target=reader) for _ in range(3)]
            for t in threads:
                t.start()
            for i in range(N0, N0 + 8, 2):
                svc.add_datasets(lake[i:i + 2])
            for t in threads:
                t.join(timeout=60)
            assert not errors
            # Steady state after the races: answers equal the fresh build.
            got = [r.indexes for r in svc.search_batch(queries)]
        with make_service(lake, box, 1, capacity=CAPACITY) as fresh:
            expected = [r.indexes for r in fresh.search_batch(queries)]
        assert got == expected


class TestChurnStream:
    def test_workload_replay_stays_consistent(self):
        lake = make_lake(11, n=10)
        from repro.geometry.rectangle import Rectangle

        ambient = Rectangle([-10.0], [10.0])
        events = mutation_workload(
            16,
            1,
            np.random.default_rng(21),
            n_initial=10,
            add_fraction=0.25,
            remove_fraction=0.15,
            batch_size=4,
            ambient=ambient,
        )
        kinds = {kind for kind, _ in events}
        assert "queries" in kinds
        with make_service(lake, ambient, 2) as svc:
            for kind, payload in events:
                if kind == "queries":
                    for result, expr in zip(svc.search_batch(payload), payload):
                        assert svc.ground_truth(expr) <= set(result.indexes)
                        assert all(
                            i not in svc.executor.removed
                            for i in result.indexes
                        )
                elif kind == "add":
                    svc.add_datasets(payload)
                else:
                    svc.remove_datasets(payload)
            assert svc.cache.stats.invalidations == svc.cache.generation
