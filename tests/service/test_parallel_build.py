"""Parallel shard builds must be deterministic.

The executor builds shard Ptile structures concurrently on its thread pool
(``warm``) and the cold path batches each shard's leaf schedule through one
multi-box backend call.  Neither may change answers: coresets are pure
functions of ``(seed, global index, size)`` and each shard owns a private
rng, so serial/parallel and batched/per-leaf evaluation must produce
identical answer sets.
"""

import numpy as np
import pytest

from repro.core.framework import Repository
from repro.core.measures import PercentileMeasure, PreferenceMeasure
from repro.core.predicates import pred
from repro.geometry.rectangle import Rectangle
from repro.service import QueryService
from repro.service.sharding import ShardedBatchExecutor


@pytest.fixture
def lake(rng):
    return [rng.uniform(0.0, 1.0, size=(200, 2)) for _ in range(12)]


@pytest.fixture
def leaves():
    out = [
        pred(PercentileMeasure(Rectangle([0.0, 0.0], [0.5, 0.5])), 0.1),
        pred(PercentileMeasure(Rectangle([0.2, 0.2], [0.9, 0.9])), 0.2, 0.8),
        pred(PercentileMeasure(Rectangle([0.4, 0.0], [1.0, 0.6])), 0.05),
        pred(PreferenceMeasure(np.array([1.0, 1.0]), k=3), 0.5),
    ]
    return out


def _answers(executor, leaves):
    return [indexes for indexes, _stamp in executor.eval_leaves(leaves)]


class TestParallelBuildDeterminism:
    def test_parallel_warm_matches_serial_warm(self, lake, leaves):
        repo = Repository.from_arrays(lake)
        serial = ShardedBatchExecutor(
            repository=repo, n_shards=4, eps=0.2, sample_size=8, seed=7,
            max_workers=0,
        )
        parallel = ShardedBatchExecutor(
            repository=repo, n_shards=4, eps=0.2, sample_size=8, seed=7,
        )
        serial.warm()
        parallel.warm()
        assert _answers(serial, leaves) == _answers(parallel, leaves)
        parallel.close()

    def test_warmed_build_matches_lazy_build(self, lake, leaves):
        repo = Repository.from_arrays(lake)
        warmed = ShardedBatchExecutor(
            repository=repo, n_shards=3, eps=0.2, sample_size=8, seed=7,
        )
        warmed.warm()
        lazy = ShardedBatchExecutor(
            repository=repo, n_shards=3, eps=0.2, sample_size=8, seed=7,
        )
        assert _answers(warmed, leaves) == _answers(lazy, leaves)
        warmed.close()
        lazy.close()

    def test_batched_leaves_match_per_leaf_loop(self, lake, leaves):
        repo = Repository.from_arrays(lake)
        batched = ShardedBatchExecutor(
            repository=repo, n_shards=2, eps=0.2, sample_size=8, seed=7,
        )
        per_leaf = ShardedBatchExecutor(
            repository=repo, n_shards=2, eps=0.2, sample_size=8, seed=7,
            batch_leaves=False,
        )
        assert _answers(batched, leaves) == _answers(per_leaf, leaves)
        batched.close()
        per_leaf.close()

    def test_service_cold_answers_identical_across_modes(self, lake, leaves):
        repo = Repository.from_arrays(lake)
        expr = (leaves[0] & leaves[1]) | leaves[2]
        results = {}
        for label, kwargs in [
            ("batched", {}),
            ("per_leaf", {"batch_leaves": False}),
            ("serial", {"max_workers": 0}),
        ]:
            with QueryService(
                repository=repo, n_shards=3, eps=0.2, sample_size=8, seed=7,
                **kwargs,
            ) as svc:
                results[label] = svc.search(expr).indexes
        assert results["batched"] == results["per_leaf"] == results["serial"]

    def test_warm_survives_closed_pool(self, lake):
        repo = Repository.from_arrays(lake)
        executor = ShardedBatchExecutor(
            repository=repo, n_shards=2, eps=0.2, sample_size=8, seed=7,
        )
        executor.close()  # pool gone; warm must fall back to serial builds
        executor.warm()
        assert all(e._ptile is not None for e in executor.engines)
