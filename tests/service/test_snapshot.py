"""Round-trip tests for the versioned snapshot container.

**Exact equality is the contract**: a loaded engine/executor/service must
answer every query identically to the object that was saved — including
delta-shard datasets, tombstone masks and warm leaf-cache entries — under
both ``mmap=True`` (read-only page-mapped buffers) and ``mmap=False``
(private copies).  Error paths (bad magic, truncation, version skew,
wrong kind) must all raise :class:`~repro.errors.SnapshotError`.
"""

import json
import os
import struct

import numpy as np
import pytest

from repro.core.engine import DatasetSearchEngine
from repro.core.framework import Repository
from repro.errors import SnapshotError
from repro.service import QueryService
from repro.service.sharding import ShardedBatchExecutor
from repro.service.snapshot import MAGIC, generation_of, inspect, load, save
from repro.workloads.generators import synthetic_data_lake
from repro.workloads.queries import batched_query_workload

N_DATASETS = 16
DIM = 1
SEED = 11
EPS = 0.2
SAMPLE_SIZE = 12
# The parametrized sweeps run kd + columnar; the rangetree backend gets a
# dedicated miniature round trip (test_rangetree_round_trip) because a
# range tree over the R^{4d+2} mapped points costs seconds to plant even
# at dim 1 — and load() re-plants it, honestly, since only the mapped
# points (not the tree nodes) live in the container.
BACKENDS = ["kd", "columnar"]


@pytest.fixture(scope="module")
def lake():
    return synthetic_data_lake(
        N_DATASETS, DIM, np.random.default_rng(SEED), median_size=80
    )


@pytest.fixture(scope="module")
def queries():
    return batched_query_workload(
        10, DIM, np.random.default_rng(SEED + 1), duplicate_leaf_rate=0.5
    )


def answers(obj, queries):
    return [r.indexes for r in obj.search_batch(queries)]


def leaves(expr):
    children = getattr(expr, "children", None)
    if children is None:
        return [expr]
    return [leaf for child in children for leaf in leaves(child)]


class TestServiceRoundTrip:
    @pytest.mark.parametrize("engine", BACKENDS)
    @pytest.mark.parametrize("mmap", [True, False])
    def test_pristine_service(self, lake, queries, tmp_path, engine, mmap):
        svc = QueryService(
            repository=Repository.from_arrays(lake),
            n_shards=3,
            engine=engine,
            seed=SEED,
            eps=EPS,
            sample_size=SAMPLE_SIZE,
            cache_capacity=256,
        )
        expected = answers(svc, queries)
        path = tmp_path / "svc.snap"
        info = svc.save(path, generation=5)
        assert info["kind"] == "query_service"
        assert generation_of(path) == 5
        loaded = QueryService.load(path, mmap=mmap)
        assert answers(loaded, queries) == expected
        assert loaded.n_shards == svc.n_shards
        assert loaded.engine_kind == svc.engine_kind
        loaded.close()
        svc.close()

    @pytest.mark.parametrize("engine", ["kd", "columnar"])
    @pytest.mark.parametrize("mmap", [True, False])
    def test_mutated_service(self, lake, queries, tmp_path, engine, mmap):
        """Delta-shard datasets and tombstone masks survive the round trip."""
        svc = QueryService(
            repository=Repository.from_arrays(lake),
            n_shards=3,
            engine=engine,
            seed=SEED,
            eps=EPS,
            sample_size=SAMPLE_SIZE,
            capacity=2 * N_DATASETS,
        )
        rng = np.random.default_rng(SEED + 2)
        svc.add_datasets([rng.normal(size=(50, DIM)) for _ in range(2)])
        svc.remove_datasets([1, 4])
        assert svc.executor.removed == frozenset({1, 4})
        expected = answers(svc, queries)

        path = tmp_path / "svc.snap"
        svc.save(path)
        loaded = QueryService.load(path, mmap=mmap)
        assert answers(loaded, queries) == expected
        assert loaded.executor.removed == frozenset({1, 4})
        assert loaded.n_datasets == svc.n_datasets
        assert loaded.n_live == svc.n_live
        # The loaded service stays live: ingestion and removal still work.
        loaded.add_datasets([rng.normal(size=(40, DIM))])
        loaded.remove_datasets([0])
        assert loaded.n_live == svc.n_live  # +1 ingested, -1 removed
        loaded.close()
        svc.close()

    @pytest.mark.parametrize("mmap", [True, False])
    def test_cache_entries_survive(self, lake, queries, tmp_path, mmap):
        """Warm leaf-cache state (entries + generation watermark) persists."""
        svc = QueryService(
            repository=Repository.from_arrays(lake),
            n_shards=2,
            engine="columnar",
            seed=SEED,
            eps=EPS,
            sample_size=SAMPLE_SIZE,
            cache_capacity=256,
        )
        expected = answers(svc, queries)  # warms the leaf cache
        n_entries = len(svc.cache)
        assert n_entries > 0
        generation = svc.cache.generation

        path = tmp_path / "svc.snap"
        svc.save(path)
        svc.close()
        loaded = QueryService.load(path, mmap=mmap)
        assert len(loaded.cache) == n_entries
        assert loaded.cache.generation == generation
        lookups_before = loaded.cache.stats.lookups
        hits_before = loaded.cache.stats.hits
        assert answers(loaded, queries) == expected
        stats = loaded.cache.stats
        assert stats.hits - hits_before == stats.lookups - lookups_before, (
            "restored cache missed on a batch it was warmed with"
        )
        loaded.close()

    @pytest.mark.parametrize("mmap", [True, False])
    def test_dim2_columnar(self, tmp_path, mmap):
        lake = synthetic_data_lake(
            8, 2, np.random.default_rng(SEED), median_size=60
        )
        queries = batched_query_workload(6, 2, np.random.default_rng(SEED + 3))
        svc = QueryService(
            repository=Repository.from_arrays(lake),
            n_shards=2,
            engine="columnar",
            seed=SEED,
            eps=EPS,
            sample_size=SAMPLE_SIZE,
        )
        expected = answers(svc, queries)
        path = tmp_path / "svc2d.snap"
        svc.save(path)
        svc.close()
        loaded = QueryService.load(path, mmap=mmap)
        assert answers(loaded, queries) == expected
        loaded.close()

    def test_mmap_buffers_are_read_only_views(self, lake, queries, tmp_path):
        svc = QueryService(
            repository=Repository.from_arrays(lake),
            n_shards=2,
            engine="columnar",
            seed=SEED,
            eps=EPS,
            sample_size=SAMPLE_SIZE,
        )
        path = tmp_path / "svc.snap"
        svc.save(path)
        svc.close()
        loaded = QueryService.load(path, mmap=True)
        points = loaded.repository[0].points
        assert not points.flags.writeable
        loaded.close()


class TestExecutorAndEngineKinds:
    @pytest.mark.parametrize("engine", BACKENDS)
    def test_executor_round_trip(self, lake, queries, tmp_path, engine):
        ex = ShardedBatchExecutor(
            repository=Repository.from_arrays(lake),
            n_shards=3,
            engine=engine,
            seed=SEED,
            eps=EPS,
            sample_size=SAMPLE_SIZE,
        )
        all_leaves = [leaf for q in queries for leaf in leaves(q)]
        expected = [sorted(ex.eval_leaf(leaf)) for leaf in all_leaves]
        path = tmp_path / "ex.snap"
        info = ex.save(path)
        assert info["kind"] == "sharded_executor"
        loaded = ShardedBatchExecutor.load(path)
        assert [sorted(loaded.eval_leaf(leaf)) for leaf in all_leaves] == expected
        loaded.close()
        ex.close()

    @pytest.mark.parametrize("engine", BACKENDS)
    def test_engine_round_trip(self, lake, queries, tmp_path, engine):
        eng = DatasetSearchEngine(
            repository=Repository.from_arrays(lake),
            rng=np.random.default_rng(SEED),
            engine=engine,
            eps=EPS,
            sample_size=SAMPLE_SIZE,
        )
        expected = [sorted(eng._eval(q)) for q in queries]
        path = tmp_path / "eng.snap"
        info = eng.save(path)
        assert info["kind"] == "engine"
        loaded = DatasetSearchEngine.load(path)
        assert [sorted(loaded._eval(q)) for q in queries] == expected

    def test_rangetree_round_trip(self, tmp_path):
        """The static backend round-trips too — miniature lake, because
        planting the R^{4d+2} range tree costs seconds per dataset and
        ``load()`` honestly re-plants it from the mapped points."""
        lake = synthetic_data_lake(
            4, DIM, np.random.default_rng(SEED), median_size=40
        )
        queries = batched_query_workload(4, DIM, np.random.default_rng(SEED + 4))
        svc = QueryService(
            repository=Repository.from_arrays(lake),
            n_shards=1,
            engine="rangetree",
            seed=SEED,
            eps=EPS,
            sample_size=8,
        )
        expected = answers(svc, queries)
        path = tmp_path / "svc_rt.snap"
        svc.save(path)
        svc.close()
        loaded = QueryService.load(path, mmap=True)
        assert loaded.engine_kind == "rangetree"
        assert answers(loaded, queries) == expected
        loaded.close()

    def test_wrong_kind_refused(self, lake, tmp_path):
        svc = QueryService(
            repository=Repository.from_arrays(lake), n_shards=2, seed=SEED,
            eps=EPS, sample_size=SAMPLE_SIZE
        )
        path = tmp_path / "svc.snap"
        svc.save(path)
        svc.close()
        with pytest.raises(SnapshotError, match="kind"):
            DatasetSearchEngine.load(path)

    def test_inspect(self, lake, tmp_path):
        svc = QueryService(
            repository=Repository.from_arrays(lake),
            n_shards=3,
            engine="columnar",
            seed=SEED,
            eps=EPS,
            sample_size=SAMPLE_SIZE,
        )
        path = tmp_path / "svc.snap"
        svc.save(path, generation=7)
        svc.close()
        summary = inspect(path)
        assert summary["kind"] == "query_service"
        assert summary["generation"] == 7
        assert summary["executor"]["n_datasets"] == N_DATASETS
        assert summary["executor"]["engine"] == "columnar"


class TestErrorPaths:
    @pytest.fixture()
    def snap(self, lake, tmp_path):
        svc = QueryService(
            repository=Repository.from_arrays(lake), n_shards=2, seed=SEED,
            eps=EPS, sample_size=SAMPLE_SIZE
        )
        path = tmp_path / "svc.snap"
        svc.save(path)
        svc.close()
        return path

    def test_missing_file(self, tmp_path):
        with pytest.raises(SnapshotError, match="cannot read"):
            load(tmp_path / "nope.snap")

    def test_bad_magic(self, snap):
        blob = snap.read_bytes()
        snap.write_bytes(b"NOTASNAP" + blob[8:])
        with pytest.raises(SnapshotError, match="bad magic"):
            load(snap)

    def test_version_mismatch(self, snap):
        blob = bytearray(snap.read_bytes())
        blob[8:12] = struct.pack("<I", 999)
        snap.write_bytes(bytes(blob))
        with pytest.raises(SnapshotError, match="version 999"):
            load(snap)

    def test_truncated_data_section(self, snap):
        snap.write_bytes(snap.read_bytes()[: os.path.getsize(snap) // 2])
        with pytest.raises(SnapshotError, match="truncated"):
            load(snap)

    def test_truncated_preamble(self, snap):
        snap.write_bytes(snap.read_bytes()[:16])
        with pytest.raises(SnapshotError, match="too short"):
            load(snap)

    def test_corrupt_header(self, snap):
        blob = bytearray(snap.read_bytes())
        hlen = struct.unpack_from("<Q", blob, 16)[0]
        blob[32 : 32 + hlen] = b"\xff" * hlen
        snap.write_bytes(bytes(blob))
        with pytest.raises(SnapshotError, match="corrupt header"):
            load(snap)

    def test_magic_constant_is_pinned(self):
        # The on-disk format is a compatibility surface; changing the
        # magic silently would orphan every existing snapshot.
        assert MAGIC == b"REPROSNP"

    def test_header_is_json(self, snap):
        with open(snap, "rb") as f:
            pre = f.read(32)
            hlen = struct.unpack_from("<Q", pre, 16)[0]
            header = json.loads(f.read(hlen))
        assert header["kind"] == "query_service"
        assert set(header["arrays"]) and "state" in header
