"""Tests for the observability layer: histograms, tracer, slow log, registry.

Covers the satellite requirements explicitly: a property test that merged
histogram quantiles bracket the pooled-sample quantiles, and span
nesting/ordering under ``search_batch`` with mixed cache hits and misses.
"""

import math
import re
import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.framework import Repository
from repro.core.measures import PercentileMeasure, PreferenceMeasure
from repro.core.predicates import And, Predicate, pred
from repro.geometry.interval import Interval
from repro.geometry.rectangle import Rectangle
from repro.service import QueryService
from repro.service.observability import (
    Histogram,
    MetricsRegistry,
    SlowQueryLog,
    Tracer,
    default_latency_bounds,
)
from repro.workloads.generators import synthetic_data_lake


def nearest_rank(sorted_values, q):
    rank = max(1, math.ceil(q / 100.0 * len(sorted_values)))
    return sorted_values[rank - 1]


class TestHistogram:
    def test_bucket_placement_and_totals(self):
        h = Histogram(bounds=(0.001, 0.01, 0.1))
        for v in (0.0005, 0.001, 0.002, 0.5):
            h.observe(v)
        # 0.001 lands in its own bucket (le semantics: first bound >= v).
        assert h.counts.tolist() == [2, 1, 0, 1]
        assert h.count == 4
        assert h.sum == pytest.approx(0.5035)

    def test_default_bounds_are_strictly_increasing(self):
        bounds = default_latency_bounds()
        assert all(b > a for a, b in zip(bounds, bounds[1:]))
        assert bounds[0] == pytest.approx(1e-6)

    def test_merge_is_vector_addition(self):
        a, b = Histogram(), Histogram()
        for v in (1e-5, 2e-3):
            a.observe(v)
        b.observe(0.5)
        merged = a.merge(b)
        assert merged.count == 3
        assert merged.counts.sum() == 3
        assert (merged.counts == a.counts + b.counts).all()
        # Operands are untouched.
        assert a.count == 2 and b.count == 1

    def test_merge_rejects_different_bounds(self):
        with pytest.raises(ValueError):
            Histogram(bounds=(1.0, 2.0)).merge(Histogram(bounds=(1.0, 3.0)))

    def test_empty_quantile_is_nan(self):
        assert math.isnan(Histogram().quantile(50.0))

    def test_overflow_quantile_reports_lower_bound(self):
        h = Histogram(bounds=(1.0, 2.0))
        h.observe(100.0)
        lo, hi = h.quantile_bounds(50.0)
        assert lo == 2.0 and math.isinf(hi)
        assert h.quantile(50.0) == 2.0

    def test_quantile_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            Histogram().quantile(101.0)

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.lists(
                st.floats(min_value=1e-7, max_value=50.0,
                          allow_nan=False, allow_infinity=False),
                min_size=1, max_size=40,
            ),
            min_size=1, max_size=5,
        ),
        st.sampled_from([50.0, 90.0, 95.0, 99.0]),
    )
    def test_merged_quantiles_bracket_pooled_sample(self, groups, q):
        # Satellite requirement: merging per-worker histograms must answer
        # quantile queries consistently with pooling the raw samples.
        merged = Histogram()
        for group in groups:
            h = Histogram()
            for v in group:
                h.observe(v)
            merged = merged.merge(h)
        pooled = sorted(v for group in groups for v in group)
        truth = nearest_rank(pooled, q)
        lo, hi = merged.quantile_bounds(q)
        assert lo < truth <= hi or (truth <= hi and lo == 0.0)
        estimate = merged.quantile(q)
        # The point estimate is conservative (never under the truth when
        # finite) and within one power-of-two bucket.
        if math.isfinite(hi):
            assert estimate >= truth
            assert estimate <= truth * 2.0 or estimate == merged.bounds[0]

    def test_snapshot_shape(self):
        h = Histogram(bounds=(0.001, 1.0))
        h.observe(0.01)
        snap = h.snapshot()
        assert snap["count"] == 1 and snap["sum_s"] == pytest.approx(0.01)
        assert snap["counts"] == [0, 1, 0]
        assert snap["p50_s"] == 1.0 and snap["p99_s"] == 1.0

    def test_thread_safety_of_observe(self):
        h = Histogram()

        def pound():
            for _ in range(2000):
                h.observe(1e-4)

        threads = [threading.Thread(target=pound) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert h.count == 8000 and h.counts.sum() == 8000


SAMPLE_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? -?[0-9].*$"
)


class TestMetricsRegistry:
    def test_counters_and_labels(self):
        reg = MetricsRegistry()
        reg.describe("x_total", "counter", "Things.")
        reg.inc("x_total", {"kind": "a"})
        reg.inc("x_total", {"kind": "a"}, by=2)
        reg.inc("x_total", {"kind": "b"})
        assert reg.counter_value("x_total", {"kind": "a"}) == 3
        body = reg.render()
        assert 'x_total{kind="a"} 3' in body
        assert 'x_total{kind="b"} 1' in body

    def test_histogram_rendering_is_cumulative(self):
        reg = MetricsRegistry()
        reg.declare_histogram("h_seconds", "H.", bounds=(0.001, 0.01))
        for v in (0.0005, 0.005, 5.0):
            reg.observe("h_seconds", v)
        body = reg.render()
        assert 'h_seconds_bucket{le="0.001"} 1' in body
        assert 'h_seconds_bucket{le="0.01"} 2' in body
        assert 'h_seconds_bucket{le="+Inf"} 3' in body
        assert "h_seconds_count 3" in body

    def test_label_escaping(self):
        reg = MetricsRegistry()
        reg.inc("y_total", {"q": 'a"b\\c'})
        assert 'q="a\\"b\\\\c"' in reg.render()

    def test_every_sample_line_parses(self):
        reg = MetricsRegistry()
        reg.declare_histogram("h_seconds", "H.")
        reg.observe("h_seconds", 0.2, {"stage": "plan"})
        reg.inc("n_total")
        for line in reg.render().splitlines():
            if not line or line.startswith("#"):
                continue
            assert SAMPLE_LINE.match(line), line

    def test_adopted_histogram_renders_live_counts(self):
        reg = MetricsRegistry()
        h = Histogram(bounds=(1.0,))
        reg.declare_histogram("ext_seconds", "External.", bounds=(1.0,))
        reg.adopt_histogram("ext_seconds", h)
        h.observe(0.5)  # owner observes after adoption
        assert "ext_seconds_count 1" in reg.render()


class TestTracer:
    def test_nesting_and_parent_links(self):
        tracer = Tracer()
        with tracer.span("a") as a:
            with tracer.span("b") as b:
                with tracer.span("c") as c:
                    pass
            with tracer.span("d") as d:
                pass
        assert tracer.root is a
        assert [s.name for s in a.children] == ["b", "d"]
        assert b.children == [c] and c.parent is b and d.parent is a

    def test_cross_thread_explicit_parent(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            parent = tracer.current()

            def worker():
                with tracer.span("w", parent=parent):
                    with tracer.span("inner"):
                        pass

            t = threading.Thread(target=worker)
            t.start()
            t.join()
        w = root.children[0]
        assert w.name == "w" and [c.name for c in w.children] == ["inner"]

    def test_record_span_attaches_and_feeds_registry(self):
        reg = MetricsRegistry()
        reg.declare_histogram("repro_stage_seconds", "S.")
        tracer = Tracer(registry=reg)
        with tracer.span("root"):
            span = tracer.record_span("phase", 10.0, 10.5, detail=1)
        assert span.duration_s == pytest.approx(0.5)
        assert tracer.root.children == [span]
        assert reg.histogram("repro_stage_seconds", {"stage": "phase"}).count == 1

    def test_to_dict_times_are_root_relative(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        d = tracer.root.to_dict()
        assert d["start_s"] == 0.0
        child = d["children"][0]
        assert 0.0 <= child["start_s"] <= d["duration_s"]
        assert child["duration_s"] <= d["duration_s"]


class TestSlowQueryLog:
    def test_disabled_by_default(self):
        log = SlowQueryLog()
        assert not log.enabled
        assert log.record({"latency_ms": 1e9}) is False
        assert log.snapshot() == []

    def test_keeps_k_worst(self):
        log = SlowQueryLog(k=3, threshold_ms=1.0)
        for ms in (5.0, 2.0, 9.0, 0.5, 7.0, 3.0):
            log.record({"latency_ms": ms})
        assert [e["latency_ms"] for e in log.snapshot()] == [9.0, 7.0, 5.0]
        assert log.n_recorded == 5  # 0.5 never counted

    def test_threshold_is_inclusive(self):
        log = SlowQueryLog(k=4, threshold_ms=2.0)
        assert log.record({"latency_ms": 2.0}) is True

    def test_clear(self):
        log = SlowQueryLog(k=2, threshold_ms=0.0)
        log.record({"latency_ms": 1.0})
        log.clear()
        assert log.snapshot() == []


@pytest.fixture(scope="module")
def lake():
    return synthetic_data_lake(
        10, 1, np.random.default_rng(0), family="clustered", median_size=150
    )


def make_service(lake, **kwargs):
    return QueryService(
        repository=Repository.from_arrays(lake),
        n_shards=2,
        eps=0.2,
        sample_size=8,
        seed=1,
        capacity=20,
        **kwargs,
    )


P1 = pred(PercentileMeasure(Rectangle([0.0], [0.5])), 0.1)
P2 = pred(PercentileMeasure(Rectangle([0.4], [0.9])), 0.05)
PR = Predicate(PreferenceMeasure(np.array([1.0]), k=2), Interval.at_least(0.2))


def top_level(trace):
    return [c["name"] for c in trace["children"]]


class TestServiceTracing:
    def test_untraced_results_have_no_trace(self, lake):
        with make_service(lake) as svc:
            assert svc.search(P1).trace is None

    def test_cold_batch_span_tree(self, lake):
        with make_service(lake) as svc:
            results = svc.search_batch([And([P1, P2]), PR], trace=True)
            trace = results[0].trace
            assert trace["name"] == "search_batch"
            assert trace["meta"]["n_queries"] == 2
            names = top_level(trace)
            # Stage order is the pipeline order; every query gets its own
            # assembly span tagged with its index.
            assert names == [
                "plan", "cache_lookup", "execute", "assemble", "assemble",
            ]
            assembles = [c for c in trace["children"] if c["name"] == "assemble"]
            assert [a["meta"]["query"] for a in assembles] == [0, 1]
            execute = trace["children"][2]
            shard_names = [c["name"] for c in execute["children"]]
            assert shard_names.count("shard_eval") == 2
            assert shard_names[-1] == "merge"
            for shard in execute["children"][:-1]:
                kernel_names = [c["name"] for c in shard.get("children", [])]
                assert kernel_names == ["engine_leaf_batch"]
            # Both results of the batch share the one span tree.
            assert results[1].trace is trace

    def test_mixed_hit_miss_batch(self, lake):
        with make_service(lake) as svc:
            svc.search(P1)  # warm one leaf
            trace = svc.search_batch([P1, P2], trace=True)[0].trace
            lookup = trace["children"][1]
            assert lookup["name"] == "cache_lookup"
            assert lookup["meta"] == {"hits": 1, "misses": 1, "upgrades": 0}
            assert "execute" in top_level(trace)

    def test_warm_batch_has_no_execute_span(self, lake):
        with make_service(lake) as svc:
            svc.search_batch([P1, P2])
            trace = svc.search_batch([P1, P2], trace=True)[0].trace
            names = top_level(trace)
            assert "execute" not in names and "upgrade" not in names
            assert names[:2] == ["plan", "cache_lookup"]

    def test_upgrade_span_after_ingest(self, lake):
        rng = np.random.default_rng(7)
        with make_service(lake) as svc:
            svc.search(P1)  # cache below the coming watermark
            svc.add_datasets([rng.uniform(0.0, 0.6, (60, 1))])
            trace = svc.search(P1, trace=True).trace
            names = top_level(trace)
            assert "upgrade" in names and "execute" not in names
            upgrade = trace["children"][names.index("upgrade")]
            child_names = [c["name"] for c in upgrade["children"]]
            assert "delta_eval" in child_names and "merge" in child_names

    def test_stage_durations_sum_to_total(self, lake):
        with make_service(lake) as svc:
            trace = svc.search_batch([P1, P2, PR], trace=True)[0].trace
            total = trace["duration_s"]
            stage_sum = sum(c["duration_s"] for c in trace["children"])
            assert 0.0 < stage_sum <= total * 1.0001
            assert stage_sum >= 0.5 * total
            # Top-level stages are sequential: ordered, non-overlapping.
            spans = trace["children"]
            for a, b in zip(spans, spans[1:]):
                assert a["start_s"] + a["duration_s"] <= b["start_s"] + 1e-9

    def test_service_level_tracing_default_and_override(self, lake):
        with make_service(lake, tracing=True) as svc:
            assert svc.search(P1).trace is not None
            assert svc.search(P1, trace=False).trace is None

    def test_tracing_feeds_stage_histograms(self, lake):
        with make_service(lake) as svc:
            svc.search_batch([P1, P2], trace=True)
            reg = svc.observability.registry
            for stage in ("plan", "cache_lookup", "execute", "assemble",
                          "search_batch"):
                assert reg.histogram(
                    "repro_stage_seconds", {"stage": stage}
                ).count >= 1, stage

    def test_trace_and_record_times_share_origin(self, lake):
        with make_service(lake) as svc:
            result = svc.search(P1, record_times=True, trace=True)
            assert result.trace["start_s"] == 0.0
            # Emit stamps fall inside the root span's window.
            for t in result.emit_times:
                assert result.start_time <= t
                assert t - result.start_time <= result.trace["duration_s"] + 1e-9


class TestServiceSlowLogAndStats:
    def test_slow_log_records_with_trace(self, lake):
        with make_service(lake, slow_query_threshold_ms=0.0) as svc:
            svc.search(P1, trace=True)
            entries = svc.observability.slow_log.snapshot()
            assert entries
            worst = entries[0]
            assert worst["latency_ms"] >= 0.0
            assert "Pred" in worst["expression"]
            assert worst["stats"]["n_leaves_unique"] == 1
            assert worst["trace"]["name"] == "search_batch"

    def test_slow_log_disabled_records_nothing(self, lake):
        with make_service(lake) as svc:
            svc.search(P1)
            assert svc.observability.slow_log.n_recorded == 0

    def test_latency_s_in_result_stats(self, lake):
        with make_service(lake) as svc:
            result = svc.search(P1)
            assert result.stats["latency_s"] > 0.0

    def test_stats_and_metrics_agree(self, lake):
        with make_service(lake) as svc:
            svc.search_batch([P1, P2, PR])
            svc.search(P1)
            stats = svc.stats()
            body = svc.observability.render_prometheus()

            def sample(name):
                for line in body.splitlines():
                    if line.startswith(name + " "):
                        return float(line.split()[-1])
                raise AssertionError(f"{name} not rendered")

            assert sample("repro_queries_total") == stats["telemetry"]["n_queries"]
            assert sample("repro_cache_hits_total") == stats["cache"]["hits"]
            assert sample("repro_cache_misses_total") == stats["cache"]["misses"]
            assert sample("repro_datasets_live") == stats["n_live"]
            assert sample("repro_cache_resident_bytes") == (
                stats["cache"]["resident_bytes"]
            )

    def test_metrics_exposes_shard_and_request_families(self, lake):
        with make_service(lake) as svc:
            svc.search(P1)
            body = svc.observability.render_prometheus()
            assert 'repro_shard_size{shard="0"}' in body
            assert 'repro_shard_size{shard="1"}' in body
            assert "repro_query_seconds_bucket" in body
            assert "repro_batch_seconds_count" in body
            for line in body.splitlines():
                if not line or line.startswith("#"):
                    continue
                assert SAMPLE_LINE.match(line), line

    def test_stats_observability_section(self, lake):
        with make_service(
            lake, slow_query_threshold_ms=5.0, slow_log_size=8, tracing=True
        ) as svc:
            obs = svc.stats()["observability"]
            assert obs == {
                "tracing": True,
                "slow_query_threshold_ms": 5.0,
                "slow_log_size": 8,
                "slow_queries": 0,
            }
