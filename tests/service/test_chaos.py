"""Chaos suite: kill workers under live traffic, watch the fleet heal.

The acceptance bar from the resilience issue: killing a non-writer
worker under load yields **zero HTTP 5xx** (in-flight connections on the
killed process may reset — that is a transport error, not a served
error), the slot respawns on the current snapshot generation within the
backoff bound, and writer death promotes a sibling so ingest keeps
working.  Skipped cleanly on platforms without ``os.fork``.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.bench.harness import http_post_json
from repro.core.framework import Repository
from repro.service import QueryService, faults
from repro.service.server import expression_to_json
from repro.service.supervisor import (
    ServiceSupervisor,
    fork_available,
    read_watermark,
)
from repro.workloads.generators import synthetic_data_lake
from repro.workloads.queries import batched_query_workload

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="chaos suite needs os.fork"
)

SEED = 53
DIM = 1


@pytest.fixture(autouse=True)
def disarmed():
    faults.disarm()
    yield
    faults.disarm()


@pytest.fixture(scope="module")
def workload():
    lake = synthetic_data_lake(
        10, DIM, np.random.default_rng(SEED), median_size=60
    )
    queries = batched_query_workload(4, DIM, np.random.default_rng(SEED + 1))
    return lake, queries


@pytest.fixture()
def snapshot(workload, tmp_path):
    lake, queries = workload
    svc = QueryService(
        repository=Repository.from_arrays(lake),
        n_shards=2,
        engine="columnar",
        seed=SEED,
        eps=0.2,
        sample_size=12,
        capacity=24,
    )
    svc.warm()
    path = tmp_path / "svc.snap"
    svc.save(path)
    svc.close()
    return path, queries


class _Traffic:
    """Background request loop recording HTTP statuses and transport errors."""

    def __init__(self, url: str, queries) -> None:
        self.url = url
        self.payload = json.dumps(
            {"expressions": [expression_to_json(q) for q in queries]}
        ).encode()
        self.statuses: list[int] = []
        self.transport_errors = 0
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        while not self._stop.is_set():
            try:
                # 429 shedding is honored (sleep Retry-After, resend)
                # rather than recorded: the chaos assertions are about
                # crashes, and backpressure is not a crash.
                self.statuses.append(
                    http_post_json(
                        f"{self.url}/search/batch",
                        self.payload,
                        timeout=10,
                        stop=self._stop,
                    )
                )
            except (urllib.error.URLError, ConnectionError, OSError):
                # A connection that landed on the corpse: reset, not served.
                self.transport_errors += 1
            time.sleep(0.01)

    def __enter__(self) -> "_Traffic":
        self._thread.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self._stop.set()
        self._thread.join(timeout=10)


def _wait_for(predicate, timeout=15.0, interval=0.05):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


class TestChaos:
    def test_kill_nonwriter_under_traffic_zero_5xx(self, snapshot):
        path, queries = snapshot
        sup = ServiceSupervisor(
            path, workers=3, poll_interval=0.1, monitor_interval=0.05,
            backoff_base=0.1, quiet=True,
        )
        try:
            host, port = sup.start()
            victim = sup.pids[2]
            with _Traffic(f"http://{host}:{port}", queries) as traffic:
                assert _wait_for(lambda: len(traffic.statuses) >= 5)
                os.kill(victim, signal.SIGKILL)
                assert _wait_for(
                    lambda: sup.health()["workers"][2]["alive"]
                    and sup.health()["workers"][2]["restarts"] == 1
                ), f"slot 2 never respawned: {sup.health()}"
                # keep traffic flowing over the healed fleet for a while
                settled = len(traffic.statuses)
                assert _wait_for(
                    lambda: len(traffic.statuses) >= settled + 10
                )
            assert traffic.statuses, "traffic loop never completed a request"
            fivexx = [s for s in traffic.statuses if s >= 500]
            assert fivexx == [], f"served 5xx during chaos: {fivexx}"
            assert sup.pids[2] != victim
        finally:
            sup.stop()

    def test_respawn_rejoins_current_generation(self, snapshot):
        path, queries = snapshot
        sup = ServiceSupervisor(
            path, workers=2, poll_interval=0.1, monitor_interval=0.05,
            backoff_base=0.1, quiet=True,
        )
        try:
            host, port = sup.start()
            # Advance the generation once through the writer first.
            new = np.random.default_rng(SEED + 5).normal(size=(30, DIM))
            receipt = None
            for _ in range(40):
                try:
                    req = urllib.request.Request(
                        f"http://{host}:{port}/datasets",
                        data=json.dumps({"datasets": [new.tolist()]}).encode(),
                        headers={"Content-Type": "application/json"},
                    )
                    with urllib.request.urlopen(req, timeout=10) as resp:
                        receipt = json.loads(resp.read())
                    break
                except urllib.error.HTTPError as exc:
                    if exc.code != 409:
                        raise
                    time.sleep(0.05)
            assert receipt is not None
            current = read_watermark(path)
            assert current >= 1

            victim = sup.pids[1]
            t_kill = time.monotonic()
            os.kill(victim, signal.SIGKILL)
            assert _wait_for(
                lambda: sup.health()["workers"][1]["alive"]
                and sup.health()["workers"][1]["restarts"] == 1
            )
            elapsed = time.monotonic() - t_kill
            # backoff_base=0.1, monitor_interval=0.05: the respawn must
            # land well inside a couple of backoff periods.
            assert elapsed < 10.0
            # The respawned worker serves the CURRENT generation, not the
            # boot one.
            def rejoined():
                stats = sup.aggregate_stats()
                gens = stats["generations"]
                return len(gens) == 2 and all(g >= current for g in gens)

            assert _wait_for(rejoined), sup.aggregate_stats()["generations"]
        finally:
            sup.stop()

    def test_writer_death_promotes_and_ingest_continues(self, snapshot):
        path, queries = snapshot
        sup = ServiceSupervisor(
            path, workers=3, poll_interval=0.1, monitor_interval=0.05,
            backoff_base=0.1, quiet=True,
        )
        try:
            host, port = sup.start()
            os.kill(sup.pids[0], signal.SIGKILL)
            assert _wait_for(
                lambda: sup.health()["writer_id"] != 0
            ), f"writer never migrated: {sup.health()}"
            assert _wait_for(
                lambda: sup.health()["workers"][0]["alive"]
            ), "slot 0 never respawned"
            # The fleet still accepts ingest: some worker answers 200 (the
            # promoted writer); the old writer's respawn answers 409.
            new = np.random.default_rng(SEED + 7).normal(size=(25, DIM))
            receipt = None
            for _ in range(60):
                try:
                    req = urllib.request.Request(
                        f"http://{host}:{port}/datasets",
                        data=json.dumps({"datasets": [new.tolist()]}).encode(),
                        headers={"Content-Type": "application/json"},
                    )
                    with urllib.request.urlopen(req, timeout=10) as resp:
                        receipt = json.loads(resp.read())
                    break
                except urllib.error.HTTPError as exc:
                    if exc.code != 409:
                        raise
                    time.sleep(0.05)
                except (urllib.error.URLError, ConnectionError, OSError):
                    time.sleep(0.05)
            assert receipt is not None, "ingest never succeeded after failover"
            assert receipt["indexes"] == [10]
        finally:
            sup.stop()

    def test_crash_loop_trips_circuit_breaker(self, snapshot):
        path, queries = snapshot
        # Workers inherit armed failpoints through fork: every handled
        # request kills the worker, so each respawn dies again on first
        # contact and the breaker must trip instead of fork-looping.
        faults.arm("handler=exit:9")
        sup = ServiceSupervisor(
            path, workers=1, poll_interval=0.2, monitor_interval=0.05,
            backoff_base=0.05, crash_loop_threshold=2, crash_loop_window=60.0,
            quiet=True,
        )
        try:
            host, port = sup.start()
            payload = json.dumps(
                {"expressions": [expression_to_json(queries[0])]}
            ).encode()

            def poke():
                req = urllib.request.Request(
                    f"http://{host}:{port}/search/batch",
                    data=payload,
                    headers={"Content-Type": "application/json"},
                )
                try:
                    with urllib.request.urlopen(req, timeout=5):
                        pass
                except (urllib.error.URLError, ConnectionError, OSError):
                    pass

            deadline = time.time() + 30
            while time.time() < deadline:
                health = sup.health()
                if health["workers"][0]["disabled"]:
                    break
                if health["workers"][0]["alive"]:
                    poke()
                time.sleep(0.05)
            health = sup.health()
            assert health["workers"][0]["disabled"], health
            assert health["workers"][0]["restarts"] >= 1
            assert health["status"] == "down"
        finally:
            sup.stop()
