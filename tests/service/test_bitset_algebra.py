"""Property suite: bitset algebra ≡ set algebra on the warm path.

Hypothesis generates random And/Or expression trees over random leaf
answers and checks that evaluating them with bitset-valued leaf results
(packed word-wise &/|) produces exactly the sets the legacy frozenset
algebra produces — plus the executor-shaped operations around them:
shard-offset translation, arbitrary index remapping, tombstone removal
masks, and delta-shard watermark upgrades across different universe sizes.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bitset import DatasetBitmap
from repro.core.measures import PercentileMeasure
from repro.core.predicates import And, Or, Predicate, pred
from repro.geometry.rectangle import Rectangle
from repro.service.planner import (
    emit_schedule,
    evaluate_with_leaf_results,
    leaf_key,
    partial_bounds,
    plan_query,
)

MAX_N = 220


def _leaf(i: int) -> Predicate:
    """The i-th distinct predicate leaf (distinct canonical keys)."""
    lo = i / 100.0
    return pred(PercentileMeasure(Rectangle([lo], [lo + 1.0])), 0.5)


LEAVES = [_leaf(i) for i in range(6)]


@st.composite
def expression_trees(draw, max_depth=3):
    """Random And/Or trees over the shared leaf pool (duplicates likely)."""
    if max_depth == 0 or draw(st.booleans()):
        return draw(st.sampled_from(LEAVES))
    op = draw(st.sampled_from([And, Or]))
    children = draw(
        st.lists(expression_trees(max_depth=max_depth - 1), min_size=1, max_size=3)
    )
    return op(children)


@st.composite
def leaf_answer_maps(draw):
    """A universe size plus one random answer set per pool leaf."""
    n = draw(st.integers(min_value=1, max_value=MAX_N))
    answers = {
        leaf_key(leaf): frozenset(
            draw(st.sets(st.integers(min_value=0, max_value=n - 1), max_size=n))
        )
        for leaf in LEAVES
    }
    return n, answers


def _as_bitmaps(answers: dict, n: int) -> dict:
    return {k: DatasetBitmap.from_indices(v, n) for k, v in answers.items()}


class TestExpressionAlgebraEquivalence:
    @given(expr=expression_trees(), data=leaf_answer_maps())
    @settings(max_examples=120, deadline=None)
    def test_evaluate_matches_set_algebra(self, expr, data):
        n, answers = data
        want = evaluate_with_leaf_results(expr, answers)
        got = evaluate_with_leaf_results(expr, _as_bitmaps(answers, n))
        assert isinstance(got, DatasetBitmap)
        assert got.to_set() == want

    @given(
        expr=expression_trees(),
        data=leaf_answer_maps(),
        known_mask=st.lists(st.booleans(), min_size=6, max_size=6),
    )
    @settings(max_examples=80, deadline=None)
    def test_partial_bounds_match(self, expr, data, known_mask):
        n, answers = data
        known_keys = {
            leaf_key(lf) for lf, keep in zip(LEAVES, known_mask) if keep
        }
        known_sets = {k: v for k, v in answers.items() if k in known_keys}
        universe_set = frozenset(range(n))
        lo_set, hi_set = partial_bounds(expr, known_sets, universe_set)
        lo_bits, hi_bits = partial_bounds(
            expr, _as_bitmaps(known_sets, n), DatasetBitmap.full(n)
        )
        assert lo_bits.to_set() == lo_set
        assert hi_bits.to_set() == hi_set

    @given(expr=expression_trees(), data=leaf_answer_maps())
    @settings(max_examples=60, deadline=None)
    def test_emit_schedule_matches(self, expr, data):
        n, answers = data
        plan = plan_query(expr)
        order = list(plan.leaves)
        times = {key: float(i) for i, key in enumerate(order)}
        used = {k: answers[k] for k in plan.leaves}
        sched_set = emit_schedule(
            plan.expression, order, used, times, frozenset(range(n))
        )
        sched_bits = emit_schedule(
            plan.expression,
            order,
            _as_bitmaps(used, n),
            times,
            DatasetBitmap.full(n),
        )
        assert sched_bits == sched_set


class TestExecutorShapedOperations:
    @given(
        data=st.data(),
        n_local=st.integers(min_value=1, max_value=100),
        offset=st.integers(min_value=0, max_value=150),
    )
    @settings(max_examples=100, deadline=None)
    def test_shard_offset_translation(self, data, n_local, offset):
        members = data.draw(
            st.sets(st.integers(min_value=0, max_value=n_local - 1))
        )
        local = DatasetBitmap.from_indices(members, n_local)
        shifted = local.shift_into(offset, n_local + offset)
        assert shifted.to_set() == {m + offset for m in members}
        # remap through the explicit contiguous mapping agrees
        mapping = list(range(offset, offset + n_local))
        assert local.remap(mapping, n_local + offset) == shifted

    @given(data=st.data(), n_local=st.integers(min_value=1, max_value=80))
    @settings(max_examples=100, deadline=None)
    def test_arbitrary_remap(self, data, n_local):
        members = data.draw(
            st.sets(st.integers(min_value=0, max_value=n_local - 1))
        )
        universe = data.draw(st.integers(min_value=n_local, max_value=300))
        rng = np.random.default_rng(data.draw(st.integers(0, 2**31)))
        mapping = rng.permutation(universe)[:n_local]
        got = DatasetBitmap.from_indices(members, n_local).remap(
            mapping, universe
        )
        assert got.to_set() == {int(mapping[m]) for m in members}

    @given(data=st.data(), n=st.integers(min_value=1, max_value=MAX_N))
    @settings(max_examples=100, deadline=None)
    def test_removal_mask(self, data, n):
        answer = data.draw(st.sets(st.integers(min_value=0, max_value=n - 1)))
        removed = data.draw(st.sets(st.integers(min_value=0, max_value=n - 1)))
        bits = DatasetBitmap.from_indices(answer, n)
        # Masks sized to their largest member, like the executor builds them.
        mask = (
            DatasetBitmap.from_indices(removed, max(removed) + 1)
            if removed
            else DatasetBitmap.zeros(0)
        )
        assert bits.andnot(mask).to_set() == answer - removed
        # Masks only grow; masking twice == masking once (idempotent).
        assert bits.andnot(mask).andnot(mask).to_set() == answer - removed

    @given(
        data=st.data(),
        n_old=st.integers(min_value=1, max_value=150),
        n_new_delta=st.integers(min_value=0, max_value=80),
    )
    @settings(max_examples=100, deadline=None)
    def test_watermark_upgrade(self, data, n_old, n_new_delta):
        """Cached answer at watermark W ∪ delta answer over [W, N) ==
        fresh answer over N, including a removal mask applied on top."""
        n_new = n_old + n_new_delta
        cached = data.draw(st.sets(st.integers(min_value=0, max_value=n_old - 1)))
        delta = (
            data.draw(
                st.sets(st.integers(min_value=n_old, max_value=n_new - 1))
            )
            if n_new_delta
            else set()
        )
        removed = data.draw(
            st.sets(st.integers(min_value=0, max_value=n_new - 1))
        )
        old_bits = DatasetBitmap.from_indices(cached, n_old)  # stale size
        delta_bits = DatasetBitmap.from_indices(delta, n_new)
        merged = old_bits | delta_bits
        assert merged.nbits == n_new
        assert merged.to_set() == cached | delta
        mask = (
            DatasetBitmap.from_indices(removed, max(removed) + 1)
            if removed
            else None
        )
        want = (cached | delta) - removed
        got = merged.andnot(mask) if mask is not None else merged
        assert got.to_set() == want

    @given(data=st.data(), n=st.integers(min_value=1, max_value=MAX_N))
    @settings(max_examples=60, deadline=None)
    def test_popcount_and_conversions(self, data, n):
        members = data.draw(st.sets(st.integers(min_value=0, max_value=n - 1)))
        bits = DatasetBitmap.from_indices(members, n)
        assert bits.count() == len(members)
        assert bits.to_list() == sorted(members)
        assert bits.to_frozenset() == frozenset(members)
        assert bits.any() == bool(members)


class TestFederatedMergeAlgebra:
    """Cross-node merge properties the federation coordinator relies on:
    heterogeneous per-node universes, wire round-trips, and offset-shifted
    OR merges must reproduce the single-universe answer exactly."""

    @given(data=st.data())
    @settings(max_examples=100, deadline=None)
    def test_shifted_or_merge_equals_union_of_slices(self, data):
        # Random federation layout: 1..5 nodes with heterogeneous sizes.
        sizes = data.draw(
            st.lists(
                st.integers(min_value=1, max_value=70), min_size=1, max_size=5
            )
        )
        total = sum(sizes)
        offsets = [sum(sizes[:i]) for i in range(len(sizes))]
        per_node = [
            data.draw(
                st.sets(st.integers(min_value=0, max_value=n - 1), max_size=n)
            )
            for n in sizes
        ]
        merged = DatasetBitmap.zeros(total)
        for ids, n, off in zip(per_node, sizes, offsets):
            merged = merged | DatasetBitmap.from_indices(
                sorted(ids), n
            ).shift_into(off, total)
        expected = sorted(
            off + i for ids, off in zip(per_node, offsets) for i in ids
        )
        assert merged.to_list() == expected
        assert merged.nbits == total

    @given(data=st.data())
    @settings(max_examples=100, deadline=None)
    def test_wire_round_trip_then_shift_is_lossless(self, data):
        # The coordinator's actual data path: node encodes to_wire(), the
        # coordinator decodes and shifts.  Decode must be exact for every
        # (size, offset) geometry, including word-boundary-straddling ones.
        from repro.core.bitset import bitmap_from_wire

        n = data.draw(st.integers(min_value=1, max_value=200))
        ids = sorted(
            data.draw(
                st.sets(st.integers(min_value=0, max_value=n - 1), max_size=n)
            )
        )
        head = data.draw(st.integers(min_value=0, max_value=130))
        tail = data.draw(st.integers(min_value=0, max_value=130))
        local = DatasetBitmap.from_indices(ids, n)
        decoded = bitmap_from_wire(local.to_wire())
        assert decoded.nbits == n
        assert decoded.to_list() == ids
        shifted = decoded.shift_into(head, head + n + tail)
        assert shifted.to_list() == [head + i for i in ids]

    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_merge_is_permutation_invariant_and_disjoint(self, data):
        # Nodes own disjoint slices, so merge order cannot matter and no
        # two nodes may light the same global bit.
        sizes = data.draw(
            st.lists(
                st.integers(min_value=1, max_value=50), min_size=2, max_size=4
            )
        )
        total = sum(sizes)
        offsets = [sum(sizes[:i]) for i in range(len(sizes))]
        shifted = []
        for n, off in zip(sizes, offsets):
            ids = sorted(
                data.draw(
                    st.sets(
                        st.integers(min_value=0, max_value=n - 1), max_size=n
                    )
                )
            )
            shifted.append(
                DatasetBitmap.from_indices(ids, n).shift_into(off, total)
            )
        forward = DatasetBitmap.zeros(total)
        for b in shifted:
            forward = forward | b
        backward = DatasetBitmap.zeros(total)
        for b in reversed(shifted):
            backward = backward | b
        assert forward.to_list() == backward.to_list()
        assert forward.count() == sum(b.count() for b in shifted)

    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_shift_into_rejects_slice_overflow(self, data):
        # A node answering over more datasets than its registered slice
        # (universe drift) must fail loudly, never silently truncate.
        import pytest

        n = data.draw(st.integers(min_value=1, max_value=60))
        total = data.draw(st.integers(min_value=1, max_value=60))
        offset = data.draw(st.integers(min_value=0, max_value=80))
        local = DatasetBitmap.full(n)
        if offset + n > total:
            with pytest.raises(ValueError):
                local.shift_into(offset, total)
        else:
            assert local.shift_into(offset, total).count() == n
