"""Tests for the benchmark harness utilities."""

import pytest

from repro.bench.harness import TableReporter, fit_loglog_slope, time_callable


class TestTiming:
    def test_time_callable_positive(self):
        assert time_callable(lambda: sum(range(100)), repeats=3) >= 0.0

    def test_rejects_bad_repeats(self):
        with pytest.raises(ValueError):
            time_callable(lambda: None, repeats=0)


class TestSlope:
    def test_linear(self):
        assert fit_loglog_slope([1, 10, 100], [2, 20, 200]) == pytest.approx(1.0)

    def test_quadratic(self):
        assert fit_loglog_slope([1, 10, 100], [1, 100, 10000]) == pytest.approx(2.0)

    def test_constant(self):
        assert fit_loglog_slope([1, 10, 100], [5, 5, 5]) == pytest.approx(0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_loglog_slope([1], [1])
        with pytest.raises(ValueError):
            fit_loglog_slope([1, 2], [1])


class TestTable:
    def test_render(self):
        t = TableReporter("demo", ["N", "time"])
        t.add_row([10, 0.123456])
        t.add_row(["big", 1.0])
        out = t.render()
        assert "demo" in out and "0.1235" in out and "big" in out
        assert len(out.splitlines()) == 5

    def test_row_width_checked(self):
        t = TableReporter("demo", ["a"])
        with pytest.raises(ValueError):
            t.add_row([1, 2])

    def test_print(self, capsys):
        t = TableReporter("demo", ["a"])
        t.add_row([1])
        t.print()
        assert "demo" in capsys.readouterr().out
