"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.framework import Repository
from repro.geometry.rectangle import Rectangle
from repro.synopsis.exact import ExactSynopsis


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator; per-test isolation via fixed seed."""
    return np.random.default_rng(12345)


@pytest.fixture
def unit_rect_1d() -> Rectangle:
    return Rectangle([0.0], [1.0])


@pytest.fixture
def small_lake_1d(rng) -> list[np.ndarray]:
    """12 one-dimensional datasets with planted mass in [0, 0.5]."""
    out = []
    for i in range(12):
        frac = (i + 1) / 13
        n_in = int(400 * frac)
        inside = rng.uniform(0.0, 0.5, size=(n_in, 1))
        outside = rng.uniform(0.5000001, 1.0, size=(400 - n_in, 1))
        out.append(np.vstack([inside, outside]))
    return out


@pytest.fixture
def small_lake_2d(rng) -> list[np.ndarray]:
    """10 two-dimensional datasets: blobs at varying centers."""
    out = []
    for i in range(10):
        center = rng.uniform(0.2, 0.8, size=2)
        out.append(np.clip(rng.normal(center, 0.15, size=(300, 2)), 0.0, 1.0))
    return out


@pytest.fixture
def exact_synopses_1d(small_lake_1d) -> list[ExactSynopsis]:
    return [ExactSynopsis(p) for p in small_lake_1d]


@pytest.fixture
def exact_synopses_2d(small_lake_2d) -> list[ExactSynopsis]:
    return [ExactSynopsis(p) for p in small_lake_2d]


@pytest.fixture
def repo_2d(small_lake_2d) -> Repository:
    return Repository.from_arrays(small_lake_2d)
