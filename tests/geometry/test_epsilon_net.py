"""Tests for ε-nets of unit vectors (Section 2)."""


import numpy as np
import pytest

from repro.geometry.epsilon_net import (
    build_epsilon_net,
    covering_angle_bound,
    nearest_net_vector,
    net_covering_angle,
)


class TestConstruction:
    @pytest.mark.parametrize("dim", [1, 2, 3, 4])
    def test_unit_norm(self, dim):
        net = build_epsilon_net(dim, 0.3)
        assert np.allclose(np.linalg.norm(net, axis=1), 1.0)

    @pytest.mark.parametrize("dim", [1, 2, 3, 4])
    def test_centrally_symmetric(self, dim):
        net = build_epsilon_net(dim, 0.3)
        keys = {tuple(np.round(v, 8)) for v in net}
        assert all(tuple(np.round(-v, 8)) in keys for v in net)

    def test_d1_is_pm_one(self):
        net = build_epsilon_net(1, 0.5)
        assert sorted(net.ravel().tolist()) == [-1.0, 1.0]

    def test_smaller_eps_more_vectors(self):
        assert len(build_epsilon_net(2, 0.05)) > len(build_epsilon_net(2, 0.3))

    def test_rejects_bad_eps(self):
        with pytest.raises(ValueError):
            build_epsilon_net(2, 0.0)
        with pytest.raises(ValueError):
            build_epsilon_net(2, 1.0)

    def test_rejects_bad_dim(self):
        with pytest.raises(ValueError):
            build_epsilon_net(0, 0.3)

    def test_high_dim_guard(self):
        with pytest.raises(ValueError):
            build_epsilon_net(8, 0.01)


class TestCoverage:
    """The paper's definition: every unit vector within the angle bound."""

    @pytest.mark.parametrize("dim,eps", [(2, 0.3), (2, 0.1), (3, 0.3), (4, 0.5)])
    def test_covering_angle(self, dim, eps, rng):
        net = build_epsilon_net(dim, eps)
        bound = covering_angle_bound(eps)
        worst = net_covering_angle(net, trials=400, rng=rng)
        assert worst <= bound + 1e-9

    def test_angle_bound_is_order_eps(self):
        # arccos(1/sqrt(1+eps^2)) ~ eps for small eps.
        assert covering_angle_bound(0.1) == pytest.approx(0.0997, abs=1e-3)


class TestNearest:
    def test_exact_member(self):
        net = build_epsilon_net(2, 0.2)
        idx = nearest_net_vector(net, net[7])
        assert np.allclose(net[idx], net[7])

    def test_normalizes_query(self):
        net = build_epsilon_net(2, 0.2)
        a = nearest_net_vector(net, np.array([10.0, 0.0]))
        b = nearest_net_vector(net, np.array([1.0, 0.0]))
        assert a == b

    def test_rejects_zero_vector(self):
        net = build_epsilon_net(2, 0.2)
        with pytest.raises(ValueError):
            nearest_net_vector(net, np.zeros(2))

    def test_rejects_wrong_dim(self):
        net = build_epsilon_net(2, 0.2)
        with pytest.raises(ValueError):
            nearest_net_vector(net, np.ones(3))

    def test_lemma_5_1_projection_error(self, rng):
        """|w(p, v) - w(p, u)| <= eps for unit-ball points, snapped u."""
        eps = 0.2
        net = build_epsilon_net(3, eps)
        for _ in range(50):
            p = rng.normal(size=3)
            p = p / np.linalg.norm(p) * rng.uniform(0, 1)  # in unit ball
            v = rng.normal(size=3)
            v /= np.linalg.norm(v)
            u = net[nearest_net_vector(net, v)]
            assert abs(p @ v - p @ u) <= eps + 1e-9
