"""Unit and property tests for Interval."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.geometry.interval import Interval

finite = st.floats(-1e6, 1e6, allow_nan=False)


class TestConstruction:
    def test_rejects_inverted(self):
        with pytest.raises(ValueError):
            Interval(1.0, 0.0)

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            Interval(float("nan"), 1.0)

    def test_degenerate_point_allowed(self):
        iv = Interval(0.5, 0.5)
        assert 0.5 in iv

    def test_factory_at_least(self):
        iv = Interval.at_least(0.3)
        assert 0.3 in iv and 1e9 in iv and 0.29 not in iv

    def test_factory_at_most(self):
        iv = Interval.at_most(0.3)
        assert 0.3 in iv and -1e9 in iv and 0.31 not in iv

    def test_factory_everything(self):
        assert 0.0 in Interval.everything()


class TestMembership:
    def test_closed_endpoints(self):
        iv = Interval(0.2, 0.8)
        assert 0.2 in iv and 0.8 in iv

    def test_open_endpoints(self):
        iv = Interval(0.2, 0.8, lo_open=True, hi_open=True)
        assert 0.2 not in iv and 0.8 not in iv and 0.5 in iv

    def test_half_open(self):
        iv = Interval(0.0, 1.0, hi_open=True)
        assert 0.0 in iv and 1.0 not in iv

    def test_contains_alias(self):
        assert Interval(0.0, 1.0).contains(0.5)

    @given(lo=finite, width=st.floats(0, 1e6, allow_nan=False), x=finite)
    def test_membership_consistent_with_endpoints(self, lo, width, x):
        iv = Interval(lo, lo + width)
        assert (x in iv) == (lo <= x <= lo + width)


class TestThreshold:
    def test_unbounded_is_threshold(self):
        assert Interval.at_least(0.5).is_threshold

    def test_hi_one_is_threshold(self):
        assert Interval(0.5, 1.0).is_threshold

    def test_two_sided_not_threshold(self):
        assert not Interval(0.2, 0.8).is_threshold


class TestExpandClampIntersect:
    def test_expand_widens_both_sides(self):
        iv = Interval(0.3, 0.6).expand(0.1)
        assert iv.lo == pytest.approx(0.2) and iv.hi == pytest.approx(0.7)

    def test_expand_leaves_infinite_sides(self):
        iv = Interval.at_least(0.5).expand(0.1)
        assert math.isinf(iv.hi) and iv.lo == pytest.approx(0.4)

    def test_clamp_restricts(self):
        iv = Interval(-0.5, 1.5).clamp(0.0, 1.0)
        assert iv.lo == 0.0 and iv.hi == 1.0

    def test_clamp_disjoint_yields_empty(self):
        iv = Interval(2.0, 3.0).clamp(0.0, 1.0)
        assert 2.0 not in iv and 0.5 not in iv

    def test_intersects(self):
        assert Interval(0.0, 0.5).intersects(Interval(0.5, 1.0))
        assert not Interval(0.0, 0.4).intersects(Interval(0.5, 1.0))

    def test_touching_open_endpoints_do_not_intersect(self):
        a = Interval(0.0, 0.5, hi_open=True)
        b = Interval(0.5, 1.0)
        assert not a.intersects(b)

    @given(a=finite, b=finite, c=finite, d=finite)
    def test_intersects_symmetric(self, a, b, c, d):
        lo1, hi1 = min(a, b), max(a, b)
        lo2, hi2 = min(c, d), max(c, d)
        i1, i2 = Interval(lo1, hi1), Interval(lo2, hi2)
        assert i1.intersects(i2) == i2.intersects(i1)
