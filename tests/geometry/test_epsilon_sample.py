"""Tests for ε-sample sizes and the empirical Lemma 2.1 behaviour."""

import numpy as np
import pytest

from repro.geometry.epsilon_sample import (
    draw_epsilon_sample,
    empirical_rectangle_error,
    epsilon_of_sample_size,
    epsilon_sample_size,
)
from repro.workloads.queries import random_rectangles


class TestSampleSize:
    def test_monotone_in_eps(self):
        assert epsilon_sample_size(0.05, 0.1) > epsilon_sample_size(0.2, 0.1)

    def test_monotone_in_phi(self):
        assert epsilon_sample_size(0.1, 0.001) >= epsilon_sample_size(0.1, 0.1)

    def test_union_bound_grows_with_n(self):
        assert epsilon_sample_size(0.1, 0.1, n_datasets=1000) > epsilon_sample_size(
            0.1, 0.1, n_datasets=1
        )

    def test_capped(self):
        assert epsilon_sample_size(0.001, 0.001) <= 4096

    def test_floor(self):
        assert epsilon_sample_size(0.99, 0.99) >= 4

    @pytest.mark.parametrize("bad", [0.0, 1.0, -0.1, 1.5])
    def test_rejects_bad_eps(self, bad):
        with pytest.raises(ValueError):
            epsilon_sample_size(bad, 0.1)

    def test_rejects_bad_phi(self):
        with pytest.raises(ValueError):
            epsilon_sample_size(0.1, 0.0)


class TestEpsilonOfSampleSize:
    def test_roundtrip_is_consistent(self):
        """eps_of(size_of(eps)) <= eps (the size rounds up)."""
        for eps in (0.3, 0.2, 0.1):
            size = epsilon_sample_size(eps, 0.05)
            if size < 4096:  # not capped
                assert epsilon_of_sample_size(size, 0.05) <= eps + 1e-9

    def test_decreasing_in_size(self):
        assert epsilon_of_sample_size(100, 0.1) < epsilon_of_sample_size(25, 0.1)

    def test_clamped_to_one(self):
        assert epsilon_of_sample_size(1, 0.001, n_datasets=10**6) == 1.0

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            epsilon_of_sample_size(0, 0.1)
        with pytest.raises(ValueError):
            epsilon_of_sample_size(10, 0.0)


class TestDrawSample:
    def test_shape(self, rng):
        pts = rng.uniform(size=(500, 3))
        s = draw_epsilon_sample(pts, 64, rng)
        assert s.shape == (64, 3)

    def test_samples_come_from_population(self, rng):
        pts = rng.uniform(size=(50, 2))
        s = draw_epsilon_sample(pts, 20, rng)
        pop = {tuple(p) for p in pts}
        assert all(tuple(q) in pop for q in s)

    def test_rejects_empty(self, rng):
        with pytest.raises(ValueError):
            draw_epsilon_sample(np.empty((0, 2)), 4, rng)

    def test_rejects_nonpositive_size(self, rng):
        with pytest.raises(ValueError):
            draw_epsilon_sample(np.zeros((5, 1)), 0, rng)


class TestLemma21Empirical:
    """The drawn coreset's rectangle error stays within the promised eps."""

    def test_error_within_bound_uniform(self, rng):
        pts = rng.uniform(size=(5000, 2))
        size = epsilon_sample_size(0.15, 0.05)
        sample = draw_epsilon_sample(pts, size, rng)
        eps_promised = 0.15
        rects = random_rectangles(50, 2, rng)
        err = empirical_rectangle_error(pts, sample, rects)
        assert err <= eps_promised + 1e-9

    def test_error_shrinks_with_sample_size(self, rng):
        pts = rng.normal(0.5, 0.2, size=(8000, 1))
        rects = random_rectangles(60, 1, rng)
        small = draw_epsilon_sample(pts, 16, rng)
        large = draw_epsilon_sample(pts, 1024, rng)
        err_small = empirical_rectangle_error(pts, small, rects)
        err_large = empirical_rectangle_error(pts, large, rects)
        assert err_large < err_small

    def test_error_of_whole_set_is_zero(self, rng):
        pts = rng.uniform(size=(100, 2))
        rects = random_rectangles(10, 2, rng)
        assert empirical_rectangle_error(pts, pts, rects) == 0.0
