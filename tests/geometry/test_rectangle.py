"""Unit and property tests for Rectangle and the orthant mappings."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry.interval import Interval
from repro.geometry.rectangle import Rectangle
from repro.index.query_box import QueryBox

coord = st.floats(-100, 100, allow_nan=False)


def rect_strategy(dim):
    """Random rectangles of a given dimension."""
    return st.lists(
        st.tuples(coord, coord), min_size=dim, max_size=dim
    ).map(lambda prs: Rectangle([min(a, b) for a, b in prs], [max(a, b) for a, b in prs]))


class TestConstruction:
    def test_rejects_inverted(self):
        with pytest.raises(ValueError):
            Rectangle([1.0], [0.0])

    def test_rejects_mismatched(self):
        with pytest.raises(ValueError):
            Rectangle([0.0, 0.0], [1.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Rectangle([], [])

    def test_from_intervals(self):
        r = Rectangle.from_intervals([Interval(0, 1), Interval(2, 3)])
        assert r.dim == 2 and r.contains_point([0.5, 2.5])

    def test_bounding(self):
        pts = np.array([[0.0, 1.0], [2.0, -1.0]])
        box = Rectangle.bounding(pts)
        assert box.contains_points(pts).all()

    def test_bounding_pad(self):
        pts = np.array([[0.0], [1.0]])
        box = Rectangle.bounding(pts, pad=0.5)
        assert box.lo[0] == -0.5 and box.hi[0] == 1.5


class TestContainment:
    def test_point_on_boundary(self):
        r = Rectangle([0.0, 0.0], [1.0, 1.0])
        assert r.contains_point([0.0, 1.0])

    def test_count_inside(self):
        r = Rectangle([0.0], [1.0])
        assert r.count_inside(np.array([[-1.0], [0.5], [2.0]])) == 1

    def test_contained_in_reflexive(self):
        r = Rectangle([0.0], [1.0])
        assert r.contained_in(r)

    def test_strictly_inside_requires_gap(self):
        inner = Rectangle([0.2], [0.8])
        outer = Rectangle([0.0], [1.0])
        assert inner.strictly_inside(outer)
        assert not inner.strictly_inside(Rectangle([0.2], [1.0]))

    def test_intersects(self):
        a = Rectangle([0.0, 0.0], [1.0, 1.0])
        assert a.intersects(Rectangle([1.0, 1.0], [2.0, 2.0]))  # touching corners
        assert not a.intersects(Rectangle([1.1, 1.1], [2.0, 2.0]))

    def test_equality_and_hash(self):
        a = Rectangle([0.0], [1.0])
        b = Rectangle([0.0], [1.0])
        assert a == b and hash(a) == hash(b)
        assert a != Rectangle([0.0], [2.0])


class TestOrthantMapping2d:
    """rho ⊆ R  ⇔  q_rho ∈ R' (the Algorithm 1/2 correspondence)."""

    @settings(max_examples=60, deadline=None)
    @given(rho=rect_strategy(2), query=rect_strategy(2))
    def test_equivalence(self, rho, query):
        point = rho.to_point_2d()
        orthant = QueryBox(query.query_orthant_2d())
        assert orthant.contains_point(point) == rho.contained_in(query)

    def test_mapped_point_layout(self):
        rho = Rectangle([1.0, 2.0], [3.0, 4.0])
        assert np.array_equal(rho.to_point_2d(), [1.0, 2.0, 3.0, 4.0])


class TestOrthantMapping4d:
    """rho ⊆ R ⊂⊂ rho_hat  ⇔  q_(rho, rho_hat) ∈ R' (Algorithm 3/4)."""

    @settings(max_examples=60, deadline=None)
    @given(rho=rect_strategy(1), outer=rect_strategy(1), query=rect_strategy(1))
    def test_equivalence(self, rho, outer, query):
        point = rho.pair_to_point_4d(outer)
        orthant = QueryBox(query.query_orthant_4d())
        expected = rho.contained_in(query) and query.strictly_inside(outer)
        assert orthant.contains_point(point) == expected

    def test_pair_point_layout(self):
        rho = Rectangle([1.0], [2.0])
        outer = Rectangle([0.0], [3.0])
        assert np.array_equal(rho.pair_to_point_4d(outer), [1.0, 0.0, 2.0, 3.0])

    def test_pair_dim_mismatch(self):
        with pytest.raises(ValueError):
            Rectangle([0.0], [1.0]).pair_to_point_4d(Rectangle([0, 0], [1, 1]))

    def test_boundary_touch_is_excluded(self):
        """Strictness: rho_hat sharing a facet with R must NOT match."""
        rho = Rectangle([0.4], [0.6])
        outer = Rectangle([0.0], [1.0])
        query = Rectangle([0.0], [0.8])  # query.lo == outer.lo
        orthant = QueryBox(query.query_orthant_4d())
        assert not orthant.contains_point(rho.pair_to_point_4d(outer))
