"""Tests for combinatorial rectangle enumeration and maximal pairs.

Includes the equivalence proof check promised in DESIGN.md (substitution
3): the pruned pair set equals the paper's definition restricted to
query-matchable pairs.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry.rect_enum import (
    RectangleGrid,
    enumerate_maximal_pairs,
    enumerate_maximal_pairs_naive,
    enumerate_rectangles,
    generalized_pairs_arrays,
    rectangles_arrays,
)
from repro.geometry.rectangle import Rectangle


def fig1_grid_s1():
    """S_1 = {1, 7, 9} from the paper's Figure 1."""
    return RectangleGrid(np.array([[1.0], [7.0], [9.0]]))


def fig1_grid_s2():
    """S_2 = {2, 4, 6, 10} from the paper's Figure 1."""
    return RectangleGrid(np.array([[2.0], [4.0], [6.0], [10.0]]))


class TestGrid:
    def test_coords_sorted_unique(self, rng):
        pts = rng.integers(0, 5, size=(20, 2)).astype(float)
        grid = RectangleGrid(pts)
        for h in range(2):
            assert np.all(np.diff(grid.coords[h]) > 0)

    def test_bounding_box_coords_added(self):
        grid = RectangleGrid(np.array([[1.0], [2.0]]), Rectangle([0.0], [3.0]))
        assert grid.coords[0].tolist() == [0.0, 1.0, 2.0, 3.0]

    def test_rejects_points_outside_box(self):
        with pytest.raises(ValueError):
            RectangleGrid(np.array([[5.0]]), Rectangle([0.0], [3.0]))

    def test_count_and_mass(self):
        grid = fig1_grid_s2()
        # [4, 6] contains {4, 6}: 2 of 4 points.
        assert grid.count((1,), (2,)) == 2
        assert grid.mass((1,), (2,)) == pytest.approx(0.5)

    def test_n_rectangles_formula(self):
        grid = fig1_grid_s1()  # m=3 -> 3*4/2 = 6
        assert grid.n_rectangles() == 6
        assert len(list(grid.index_rectangles())) == 6


class TestEnumerateRectangles:
    def test_fig1_example_r1(self):
        """The paper's worked example: R_1 for S_1 = {1,7,9}."""
        rects = enumerate_rectangles(fig1_grid_s1())
        as_pairs = {(r.lo[0], r.hi[0]): w for r, w in rects}
        expected = {(1, 1), (7, 7), (9, 9), (1, 7), (1, 9), (7, 9)}
        assert set(as_pairs) == {(float(a), float(b)) for a, b in expected}
        # The paper: weight of [1, 7] is 2/3.
        assert as_pairs[(1.0, 7.0)] == pytest.approx(2 / 3)

    def test_fig1_example_r2_size(self):
        assert len(enumerate_rectangles(fig1_grid_s2())) == 10

    def test_2d_counts(self, rng):
        pts = rng.uniform(size=(4, 2))
        grid = RectangleGrid(pts)
        rects = enumerate_rectangles(grid)
        assert len(rects) == grid.n_rectangles()
        for rect, w in rects:
            assert w == pytest.approx(rect.count_inside(pts) / 4)


class TestMaximalPairs:
    def test_fig1_pairs(self):
        """The paper's Section 4.3 example with B = [0, 11]."""
        box = Rectangle([0.0], [11.0])
        g1 = RectangleGrid(np.array([[1.0], [7.0], [9.0]]), box)
        pairs = {
            ((i.lo[0], i.hi[0]), (o.lo[0], o.hi[0]))
            for i, o, _w in enumerate_maximal_pairs(g1)
        }
        assert ((7.0, 7.0), (1.0, 9.0)) in pairs  # the paper's example pair
        g2 = RectangleGrid(np.array([[2.0], [4.0], [6.0], [10.0]]), box)
        pairs2 = {
            ((i.lo[0], i.hi[0]), (o.lo[0], o.hi[0]))
            for i, o, _w in enumerate_maximal_pairs(g2)
        }
        assert ((4.0, 6.0), (2.0, 10.0)) in pairs2
        # ([6,6], [2,10]) must NOT be a pair: [4,6] sits strictly between.
        assert ((6.0, 6.0), (2.0, 10.0)) not in pairs2

    def test_pair_weights_are_inner_mass(self):
        box = Rectangle([0.0], [11.0])
        grid = RectangleGrid(np.array([[1.0], [7.0], [9.0]]), box)
        for inner, _outer, w in enumerate_maximal_pairs(grid):
            assert w == pytest.approx(inner.count_inside(grid.points) / 3)

    def test_outer_strictly_contains_inner(self, rng):
        pts = rng.uniform(0.2, 0.8, size=(5, 2))
        grid = RectangleGrid(pts, Rectangle([0.0, 0.0], [1.0, 1.0]))
        for inner, outer, _w in enumerate_maximal_pairs(grid):
            assert inner.strictly_inside(outer)

    @settings(max_examples=20, deadline=None)
    @given(
        n=st.integers(2, 5),
        dim=st.integers(1, 2),
        seed=st.integers(0, 10_000),
    )
    def test_pruning_equivalence(self, n, dim, seed):
        """DESIGN.md substitution 3: pruned set == paper's matchable pairs."""
        rng = np.random.default_rng(seed)
        pts = rng.uniform(0.1, 0.9, size=(n, dim))
        box = Rectangle([0.0] * dim, [1.0] * dim)
        grid = RectangleGrid(pts, box)
        fast = {
            (tuple(i.lo), tuple(i.hi), tuple(o.lo), tuple(o.hi))
            for i, o, _w in enumerate_maximal_pairs(grid)
        }
        naive = {
            (tuple(i.lo), tuple(i.hi), tuple(o.lo), tuple(o.hi))
            for i, o, _w in enumerate_maximal_pairs_naive(grid, matchable_only=True)
        }
        assert fast == naive

    def test_naive_unrestricted_is_superset(self, rng):
        pts = rng.uniform(0.2, 0.8, size=(3, 1))
        grid = RectangleGrid(pts, Rectangle([0.0], [1.0]))
        matchable = len(enumerate_maximal_pairs_naive(grid, matchable_only=True))
        everything = len(enumerate_maximal_pairs_naive(grid, matchable_only=False))
        assert everything >= matchable


class TestVectorizedArrays:
    """The block-operation enumerators must match the reference enumerators
    exactly — same row order, bitwise-equal floats."""

    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(1, 6),
        dim=st.integers(1, 3),
        seed=st.integers(0, 10_000),
        with_box=st.booleans(),
    )
    def test_rectangles_match_reference(self, n, dim, seed, with_box):
        rng = np.random.default_rng(seed)
        pts = np.round(rng.uniform(0.1, 0.9, size=(n, dim)), 1)  # force ties
        box = Rectangle([0.0] * dim, [1.0] * dim) if with_box else None
        grid = RectangleGrid(pts, bounding_box=box)
        fast = rectangles_arrays(grid, vectorized=True)
        ref = rectangles_arrays(grid, vectorized=False)
        for a, b in zip(fast, ref):
            assert a.shape == b.shape
            assert np.array_equal(a, b)

    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(1, 5),
        dim=st.integers(1, 2),
        seed=st.integers(0, 10_000),
        with_box=st.booleans(),
    )
    def test_generalized_pairs_match_reference(self, n, dim, seed, with_box):
        rng = np.random.default_rng(seed)
        pts = np.round(rng.uniform(0.1, 0.9, size=(n, dim)), 1)
        box = Rectangle([0.0] * dim, [1.0] * dim) if with_box else None
        grid = RectangleGrid(pts, bounding_box=box)
        fast = generalized_pairs_arrays(grid, vectorized=True)
        ref = generalized_pairs_arrays(grid, vectorized=False)
        for a, b in zip(fast, ref):
            assert a.shape == b.shape
            assert np.array_equal(a, b)

    def test_rectangles_agree_with_object_enumerator(self, rng):
        pts = rng.uniform(size=(4, 2))
        grid = RectangleGrid(pts)
        lo, hi, mass = rectangles_arrays(grid)
        rects = enumerate_rectangles(grid)
        assert lo.shape == (len(rects), 2)
        for p, (rect, w) in enumerate(rects):
            assert np.array_equal(lo[p], rect.lo)
            assert np.array_equal(hi[p], rect.hi)
            assert mass[p] == w

    def test_zero_pairs_yield_shaped_empty_matrices(self):
        """Regression: a degenerate grid axis produces zero generalized
        pairs, and the arrays must be shaped ``(0, d)`` — not the ragged
        1-d array ``np.asarray([])`` used to produce."""
        grid = RectangleGrid(
            np.array([[0.5], [0.5]]), Rectangle([0.5], [0.5])
        )
        in_lo, in_hi, out_lo, out_hi, w = generalized_pairs_arrays(grid)
        for mat in (in_lo, in_hi, out_lo, out_hi):
            assert mat.shape == (0, 1)
        assert w.shape == (0,)
        # the reference path must agree on the shapes
        ref = generalized_pairs_arrays(grid, vectorized=False)
        assert [a.shape for a in ref] == [(0, 1)] * 4 + [(0,)]

    def test_guard_applies_to_vectorized_path(self, rng):
        pts = rng.uniform(size=(2000, 2))
        grid = RectangleGrid(pts)
        with pytest.raises(ValueError):
            rectangles_arrays(grid)
        with pytest.raises(ValueError):
            generalized_pairs_arrays(grid)


class TestGuards:
    def test_enumeration_cap(self, rng):
        pts = rng.uniform(size=(2000, 2))
        grid = RectangleGrid(pts)
        with pytest.raises(ValueError):
            list(grid.index_rectangles())

    def test_expand_requires_interior(self):
        grid = fig1_grid_s1()
        with pytest.raises(ValueError):
            grid.expand_once((0,), (1,))
