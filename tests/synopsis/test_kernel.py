"""Tests for the direction/quantile kernel synopsis (Pref-only)."""

import numpy as np
import pytest

from repro.errors import CapabilityError
from repro.geometry.rectangle import Rectangle
from repro.synopsis.kernel import DirectionQuantileSynopsis


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(21)
    return rng.uniform(-0.5, 0.5, size=(3000, 2))


@pytest.fixture(scope="module")
def kernel(data):
    return DirectionQuantileSynopsis(
        data, eps_dir=0.1, n_quantiles=128, rng=np.random.default_rng(2)
    )


class TestCapabilities:
    def test_no_sampling_support(self, kernel, rng):
        with pytest.raises(CapabilityError):
            kernel.sample(10, rng)
        with pytest.raises(CapabilityError):
            kernel.mass(Rectangle([0, 0], [1, 1]))
        assert kernel.delta_ptile is None

    def test_metadata(self, kernel, data):
        assert kernel.dim == 2
        assert kernel.n_points == data.shape[0]
        assert kernel.n_directions >= 8


class TestScore:
    def test_error_within_delta_on_net_directions(self, kernel, data):
        v = kernel._net[3]
        for k in (1, 10, 100):
            exact = np.sort(data @ v)[data.shape[0] - k]
            assert abs(kernel.score(v, k) - exact) <= kernel.delta_pref + 1e-9

    def test_error_within_delta_on_random_directions(self, kernel, data):
        rng = np.random.default_rng(5)
        n = data.shape[0]
        for _ in range(20):
            v = rng.normal(size=2)
            v /= np.linalg.norm(v)
            k = int(rng.integers(1, n // 4))
            exact = np.sort(data @ v)[n - k]
            assert abs(kernel.score(v, k) - exact) <= kernel.delta_pref + 1e-9

    def test_k_beyond_population(self, kernel, data):
        assert kernel.score(np.array([1.0, 0.0]), data.shape[0] + 1) == float("-inf")

    def test_monotone_in_k(self, kernel):
        v = np.array([0.6, 0.8])
        scores = [kernel.score(v, k) for k in (1, 30, 300, 1500)]
        assert all(a >= b - 1e-12 for a, b in zip(scores, scores[1:]))

    def test_finer_net_tighter_delta(self, data):
        coarse = DirectionQuantileSynopsis(data, eps_dir=0.4, rng=np.random.default_rng(1))
        fine = DirectionQuantileSynopsis(data, eps_dir=0.05, rng=np.random.default_rng(1))
        assert fine.delta_pref < coarse.delta_pref

    def test_rejects_bad_quantiles(self, data):
        with pytest.raises(ValueError):
            DirectionQuantileSynopsis(data, n_quantiles=1)
