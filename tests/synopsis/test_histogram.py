"""Tests for the equi-width histogram synopsis."""

import numpy as np
import pytest

from repro.geometry.rectangle import Rectangle
from repro.synopsis.histogram import HistogramSynopsis
from repro.workloads.queries import random_rectangles


class TestConstruction:
    def test_bins_per_axis(self, rng):
        syn = HistogramSynopsis(rng.uniform(size=(100, 2)), bins=[8, 16])
        assert syn.bins_per_axis == [8, 16]

    def test_rejects_bad_bins(self, rng):
        with pytest.raises(ValueError):
            HistogramSynopsis(rng.uniform(size=(10, 2)), bins=[8])
        with pytest.raises(ValueError):
            HistogramSynopsis(rng.uniform(size=(10, 2)), bins=0)

    def test_constant_column_handled(self):
        data = np.column_stack([np.ones(50), np.arange(50, dtype=float)])
        syn = HistogramSynopsis(data, bins=4)
        assert syn.mass(Rectangle([0.5, 0.0], [1.5, 100.0])) == pytest.approx(1.0)


class TestMass:
    def test_full_box_mass_one(self, rng):
        data = rng.uniform(size=(1000, 2))
        syn = HistogramSynopsis(data, bins=10)
        assert syn.mass(Rectangle([-1, -1], [2, 2])) == pytest.approx(1.0)

    def test_empty_region(self, rng):
        data = rng.uniform(0.5, 1.0, size=(500, 1))
        syn = HistogramSynopsis(data, bins=8)
        assert syn.mass(Rectangle([0.0], [0.4])) == pytest.approx(0.0, abs=1e-9)

    def test_error_within_delta(self, rng):
        data = rng.normal(0.5, 0.15, size=(20_000, 2))
        syn = HistogramSynopsis(data, bins=24)
        for rect in random_rectangles(30, 2, rng):
            exact = rect.count_inside(data) / data.shape[0]
            assert abs(syn.mass(rect) - exact) <= syn.delta_ptile + 1e-9

    def test_finer_bins_tighter_delta(self, rng):
        data = rng.normal(0.5, 0.15, size=(5000, 1))
        coarse = HistogramSynopsis(data, bins=4)
        fine = HistogramSynopsis(data, bins=64)
        assert fine.delta_ptile < coarse.delta_ptile

    def test_dim_mismatch(self, rng):
        syn = HistogramSynopsis(rng.uniform(size=(10, 2)), bins=4)
        with pytest.raises(ValueError):
            syn.mass(Rectangle([0.0], [1.0]))


class TestSample:
    def test_samples_in_data_range(self, rng):
        data = rng.uniform(3.0, 5.0, size=(1000, 2))
        syn = HistogramSynopsis(data, bins=8)
        s = syn.sample(500, rng)
        assert s.shape == (500, 2)
        assert s.min() >= 3.0 - 1e-6 and s.max() <= 5.0 + 1e-3

    def test_sample_distribution_roughly_matches(self, rng):
        """Mass of a region under sampling tracks the histogram mass."""
        data = np.vstack(
            [rng.uniform(0, 0.2, size=(800, 1)), rng.uniform(0.8, 1.0, size=(200, 1))]
        )
        syn = HistogramSynopsis(data, bins=10)
        s = syn.sample(4000, rng)
        frac_low = float((s <= 0.2).mean())
        assert frac_low == pytest.approx(0.8, abs=0.05)


class TestScore:
    def test_score_error_within_cell_radius(self, rng):
        data = rng.uniform(-1, 1, size=(4000, 2))
        syn = HistogramSynopsis(data, bins=32)
        for _ in range(10):
            v = rng.normal(size=2)
            v /= np.linalg.norm(v)
            k = int(rng.integers(1, 400))
            exact = np.sort(data @ v)[4000 - k]
            assert abs(syn.score(v, k) - exact) <= syn.delta_pref + 1e-9

    def test_k_beyond_population(self, rng):
        syn = HistogramSynopsis(rng.uniform(size=(10, 1)), bins=4)
        assert syn.score(np.array([1.0]), 11) == float("-inf")
