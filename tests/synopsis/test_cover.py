"""Tests for the r-cover synopsis (Section 6 extensions substrate)."""

import numpy as np
import pytest

from repro.errors import ConstructionError
from repro.synopsis.cover import CoverSynopsis


class TestConstruction:
    def test_cover_property(self, rng):
        data = rng.uniform(size=(3000, 2))
        cov = CoverSynopsis(data, radius=0.1)
        assert cov.covers(data)

    def test_cover_points_are_data_points(self, rng):
        data = rng.uniform(size=(500, 2))
        cov = CoverSynopsis(data, radius=0.2)
        pop = {tuple(p) for p in data}
        assert all(tuple(c) in pop for c in cov.cover_points)

    def test_smaller_radius_more_points(self, rng):
        data = rng.uniform(size=(3000, 2))
        fine = CoverSynopsis(data, radius=0.05)
        coarse = CoverSynopsis(data, radius=0.3)
        assert fine.size > coarse.size

    def test_compression(self, rng):
        data = rng.uniform(size=(5000, 2))
        cov = CoverSynopsis(data, radius=0.1)
        assert cov.size < 1000
        assert cov.n_points == 5000

    def test_validation(self, rng):
        with pytest.raises(ConstructionError):
            CoverSynopsis(np.empty((0, 2)), radius=0.1)
        with pytest.raises(ConstructionError):
            CoverSynopsis(rng.uniform(size=(5, 2)), radius=0.0)

    def test_negative_coordinates(self, rng):
        data = rng.uniform(-5, -4, size=(500, 3))
        cov = CoverSynopsis(data, radius=0.2)
        assert cov.covers(data)


class TestDistance:
    def test_additive_error_bound(self, rng):
        data = rng.uniform(size=(2000, 2))
        cov = CoverSynopsis(data, radius=0.1)
        for _ in range(25):
            q = rng.uniform(-0.5, 1.5, size=2)
            exact = float(np.linalg.norm(data - q, axis=1).min())
            est = cov.distance_to(q)
            assert exact <= est <= exact + cov.radius + 1e-9

    def test_zero_distance_on_cover_point(self, rng):
        data = rng.uniform(size=(100, 2))
        cov = CoverSynopsis(data, radius=0.2)
        assert cov.distance_to(cov.cover_points[0]) == 0.0

    def test_shape_validation(self, rng):
        cov = CoverSynopsis(rng.uniform(size=(10, 2)), radius=0.2)
        with pytest.raises(ValueError):
            cov.distance_to(np.zeros(3))
