"""Round-trip tests for the synopsis wire format."""

import json

import numpy as np
import pytest

from repro.errors import ConstructionError
from repro.geometry.rectangle import Rectangle
from repro.synopsis.cover import CoverSynopsis
from repro.synopsis.exact import ExactSynopsis
from repro.synopsis.gmm import GMMSynopsis
from repro.synopsis.histogram import HistogramSynopsis
from repro.synopsis.kernel import DirectionQuantileSynopsis
from repro.synopsis.quantile import QuantileHistogramSynopsis
from repro.synopsis.sample import EpsilonSampleSynopsis
from repro.synopsis.serialize import dumps, from_dict, loads, to_dict


@pytest.fixture(scope="module")
def data():
    return np.random.default_rng(41).uniform(size=(1500, 2))


class TestEpsilonSampleRoundTrip:
    def test_queries_identical(self, data, rng):
        original = EpsilonSampleSynopsis.from_points(
            data, size=200, rng=np.random.default_rng(2)
        )
        restored = loads(dumps(original))
        rect = Rectangle([0.1, 0.1], [0.6, 0.6])
        assert restored.mass(rect) == original.mass(rect)
        assert restored.delta_ptile == original.delta_ptile
        assert restored.delta_pref == original.delta_pref
        v = np.array([0.6, 0.8])
        assert restored.score(v, 30) == original.score(v, 30)
        assert restored.n_points == original.n_points


class TestCoverRoundTrip:
    def test_queries_identical(self, data):
        original = CoverSynopsis(data, radius=0.08)
        restored = loads(dumps(original))
        q = np.array([0.3, 0.9])
        assert restored.distance_to(q) == original.distance_to(q)
        assert restored.radius == original.radius
        assert np.array_equal(restored.cover_points, original.cover_points)


class TestQuantileRoundTrip:
    def test_queries_identical(self, data, rng):
        original = QuantileHistogramSynopsis(data, rng=np.random.default_rng(3))
        restored = loads(dumps(original))
        rect = Rectangle([0.2, 0.0], [0.8, 0.5])
        assert restored.mass(rect) == original.mass(rect)
        v = np.array([1.0, 1.0])
        assert restored.score(v, 15) == original.score(v, 15)
        s1 = restored.sample(50, np.random.default_rng(5))
        s2 = original.sample(50, np.random.default_rng(5))
        assert np.array_equal(s1, s2)


class TestGMMRoundTrip:
    def test_queries_identical(self, data):
        original = GMMSynopsis(
            data, n_components=3, rng=np.random.default_rng(7), n_iter=15
        )
        restored = loads(dumps(original))
        rect = Rectangle([0.1, 0.2], [0.7, 0.9])
        assert restored.mass(rect) == original.mass(rect)
        assert restored.delta_ptile == original.delta_ptile
        assert restored.delta_pref == original.delta_pref
        v = np.array([0.6, -0.8])
        assert restored.score(v, 40) == original.score(v, 40)
        assert restored.n_components == original.n_components
        assert restored.n_points == original.n_points
        s1 = restored.sample(30, np.random.default_rng(9))
        s2 = original.sample(30, np.random.default_rng(9))
        assert np.array_equal(s1, s2)


class TestGridHistogramRoundTrip:
    def test_queries_identical(self, data):
        original = HistogramSynopsis(data, bins=[8, 12])
        restored = loads(dumps(original))
        rect = Rectangle([0.15, 0.05], [0.55, 0.95])
        assert restored.mass(rect) == original.mass(rect)
        assert restored.delta_ptile == original.delta_ptile
        assert restored.delta_pref == original.delta_pref
        assert restored.bins_per_axis == original.bins_per_axis
        v = np.array([1.0, -1.0])
        assert restored.score(v, 25) == original.score(v, 25)
        s1 = restored.sample(40, np.random.default_rng(4))
        s2 = original.sample(40, np.random.default_rng(4))
        assert np.array_equal(s1, s2)


class TestDirectionQuantileRoundTrip:
    def test_queries_identical(self, data):
        original = DirectionQuantileSynopsis(
            data - 0.5, eps_dir=0.2, n_quantiles=16,
            rng=np.random.default_rng(6),
        )
        restored = loads(dumps(original))
        assert restored.delta_pref == original.delta_pref
        assert restored.n_directions == original.n_directions
        for v in (np.array([1.0, 0.0]), np.array([-0.3, 0.7])):
            for k in (1, 10, 100):
                assert restored.score(v, k) == original.score(v, k)
        vs = np.random.default_rng(8).normal(size=(12, 2))
        assert np.array_equal(
            restored.score_batch(vs, 10), original.score_batch(vs, 10)
        )


class TestFormat:
    def test_payload_is_json(self, data):
        payload = dumps(CoverSynopsis(data, radius=0.1))
        parsed = json.loads(payload)
        assert parsed["kind"] == "cover" and parsed["format"] == 1

    def test_unsupported_kind_rejected(self, data):
        with pytest.raises(ConstructionError):
            to_dict(ExactSynopsis(data))

    def test_bad_payloads_rejected(self):
        with pytest.raises(ConstructionError):
            from_dict({"kind": "alien", "format": 1})
        with pytest.raises(ConstructionError):
            from_dict({"kind": "cover", "format": 99})
        with pytest.raises(ConstructionError):
            from_dict("not a dict")  # type: ignore[arg-type]
