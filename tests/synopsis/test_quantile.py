"""Tests for the equi-depth quantile histogram synopsis."""

import numpy as np
import pytest

from repro.geometry.rectangle import Rectangle
from repro.synopsis.quantile import QuantileHistogramSynopsis
from repro.workloads.queries import random_rectangles


@pytest.fixture(scope="module")
def independent_data():
    rng = np.random.default_rng(31)
    return rng.uniform(size=(6000, 2))


@pytest.fixture(scope="module")
def syn(independent_data):
    return QuantileHistogramSynopsis(
        independent_data, rng=np.random.default_rng(1)
    )


class TestMass:
    def test_independent_attributes_accurate(self, syn):
        assert syn.mass(Rectangle([0.0, 0.0], [0.5, 0.5])) == pytest.approx(
            0.25, abs=0.03
        )

    def test_error_within_measured_delta(self, independent_data, syn):
        rng = np.random.default_rng(6)
        for rect in random_rectangles(30, 2, rng):
            exact = rect.count_inside(independent_data) / independent_data.shape[0]
            assert abs(syn.mass(rect) - exact) <= syn.delta_ptile + 0.01

    def test_correlated_attributes_get_large_delta(self):
        """Independence assumption fails on correlated data — and the
        measured delta must say so."""
        rng = np.random.default_rng(9)
        x = rng.uniform(size=6000)
        correlated = np.column_stack([x, x + rng.normal(0, 0.01, 6000)])
        syn_corr = QuantileHistogramSynopsis(correlated, rng=rng)
        assert syn_corr.delta_ptile > 0.1

    def test_out_of_range(self, syn):
        assert syn.mass(Rectangle([2.0, 2.0], [3.0, 3.0])) == 0.0
        assert syn.mass(Rectangle([-1, -1], [2, 2])) == pytest.approx(1.0)

    def test_dim_mismatch(self, syn):
        with pytest.raises(ValueError):
            syn.mass(Rectangle([0.0], [1.0]))


class TestSample:
    def test_marginals_match(self, independent_data, syn, rng):
        s = syn.sample(4000, rng)
        for h in range(2):
            assert np.mean(s[:, h] <= 0.3) == pytest.approx(0.3, abs=0.04)

    def test_shape(self, syn, rng):
        assert syn.sample(10, rng).shape == (10, 2)


class TestScore:
    def test_independent_data_score(self, independent_data, syn):
        v = np.array([1.0, 0.0])
        exact = np.sort(independent_data[:, 0])[-60]
        assert abs(syn.score(v, 60) - exact) <= syn.delta_pref + 0.02

    def test_deterministic(self, syn):
        v = np.array([0.6, 0.8])
        assert syn.score(v, 10) == syn.score(v, 10)

    def test_k_beyond_population(self, syn, independent_data):
        assert syn.score(np.array([1.0, 0.0]), independent_data.shape[0] + 1) == float(
            "-inf"
        )


class TestValidation:
    def test_bad_args(self, rng):
        with pytest.raises(ValueError):
            QuantileHistogramSynopsis(np.empty((0, 2)), rng=rng)
        with pytest.raises(ValueError):
            QuantileHistogramSynopsis(rng.uniform(size=(10, 1)), n_quantiles=1, rng=rng)

    def test_metadata(self, syn):
        assert syn.dim == 2 and syn.n_points == 6000 and syn.n_quantiles == 64


class TestVectorizedCdf:
    """The all-axes-at-once CDF must match the per-axis np.interp loop."""

    def _reference_cdf(self, syn, axis, value):
        knots = syn._knots[axis]
        if value < knots[0]:
            return 0.0
        if value >= knots[-1]:
            return 1.0
        return float(np.interp(value, knots, syn._levels))

    @pytest.mark.parametrize("kind", ["uniform", "normal", "duplicates"])
    def test_matches_interp_reference(self, kind, rng):
        if kind == "uniform":
            data = rng.uniform(size=(600, 3))
        elif kind == "normal":
            data = rng.normal(size=(600, 3))
        else:  # discrete values -> heavy duplicate knots
            data = rng.integers(0, 4, size=(600, 3)).astype(float)
        syn = QuantileHistogramSynopsis(
            data, n_quantiles=16, probe_rects=4, rng=rng
        )
        probes = rng.uniform(data.min() - 0.5, data.max() + 0.5, size=(80, 3))
        # Exact knot values are the duplicate-resolution edge case.
        knot_probes = np.stack(
            [rng.choice(syn._knots[h], size=16) for h in range(3)], axis=1
        )
        for v in np.vstack([probes, knot_probes]):
            got = syn._marginal_cdf_all(v)
            want = [self._reference_cdf(syn, h, v[h]) for h in range(3)]
            assert np.allclose(got, want, atol=1e-12)

    def test_mass_is_product_of_marginals(self, syn, rng):
        from repro.geometry.rectangle import Rectangle

        for _ in range(20):
            a, b = rng.uniform(size=(2, 2))
            rect = Rectangle(np.minimum(a, b), np.maximum(a, b))
            want = 1.0
            for h in range(2):
                want *= max(
                    0.0,
                    self._reference_cdf(syn, h, float(rect.hi[h]))
                    - self._reference_cdf(syn, h, float(rect.lo[h])),
                )
            assert abs(syn.mass(rect) - want) < 1e-12
