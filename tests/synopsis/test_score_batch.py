"""score_batch must agree with per-vector score for every synopsis type."""

import numpy as np
import pytest

from repro.synopsis import (
    DirectionQuantileSynopsis,
    EpsilonSampleSynopsis,
    ExactSynopsis,
    GMMSynopsis,
    HistogramSynopsis,
)


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(17)
    return rng.uniform(-0.5, 0.5, size=(800, 2))


@pytest.fixture(scope="module")
def directions():
    rng = np.random.default_rng(18)
    v = rng.normal(size=(12, 2))
    return v / np.linalg.norm(v, axis=1, keepdims=True)


def synopses(data):
    rng = np.random.default_rng(19)
    return {
        "exact": ExactSynopsis(data),
        "sample": EpsilonSampleSynopsis.from_points(data, size=200, rng=rng),
        "hist": HistogramSynopsis(data, bins=12),
        "gmm": GMMSynopsis(data, n_components=2, rng=rng, n_iter=15),
        "kernel": DirectionQuantileSynopsis(data, eps_dir=0.2, rng=rng),
    }


@pytest.mark.parametrize("kind", ["exact", "sample", "hist", "gmm", "kernel"])
def test_batch_matches_scalar(data, directions, kind):
    syn = synopses(data)[kind]
    for k in (1, 10, 100):
        batch = syn.score_batch(directions, k)
        scalar = np.array([syn.score(v, k) for v in directions])
        assert np.allclose(batch, scalar, atol=1e-9)


def test_batch_k_beyond_size(data, directions):
    syn = ExactSynopsis(data)
    out = syn.score_batch(directions, data.shape[0] + 1)
    assert np.all(np.isneginf(out))


def test_batch_single_vector(data):
    syn = ExactSynopsis(data)
    v = np.array([1.0, 0.0])
    assert syn.score_batch(v, 5).shape == (1,)
    assert syn.score_batch(v, 5)[0] == pytest.approx(syn.score(v, 5))


def test_batch_rejects_zero_vector(data):
    syn = ExactSynopsis(data)
    with pytest.raises(ValueError):
        syn.score_batch(np.zeros((2, 2)), 1)
