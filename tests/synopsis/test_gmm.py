"""Tests for the diagonal-GMM synopsis (EM fit + measured deltas)."""

import numpy as np
import pytest

from repro.geometry.rectangle import Rectangle
from repro.synopsis.gmm import GMMSynopsis
from repro.workloads.queries import random_rectangles


@pytest.fixture(scope="module")
def bimodal_data():
    rng = np.random.default_rng(77)
    return np.vstack(
        [rng.normal(-2.0, 0.4, size=(2000, 2)), rng.normal(2.0, 0.6, size=(2000, 2))]
    )


@pytest.fixture(scope="module")
def gmm(bimodal_data):
    return GMMSynopsis(bimodal_data, n_components=2, rng=np.random.default_rng(7), n_iter=40)


class TestFit:
    def test_finds_both_modes(self, gmm):
        centers = sorted(gmm._means[:, 0].tolist())
        assert centers[0] == pytest.approx(-2.0, abs=0.3)
        assert centers[1] == pytest.approx(2.0, abs=0.3)

    def test_weights_balanced(self, gmm):
        assert gmm._weights.min() > 0.3

    def test_n_components_clamped(self, rng):
        syn = GMMSynopsis(rng.normal(size=(3, 1)), n_components=10, rng=rng, n_iter=5)
        assert syn.n_components <= 3

    def test_rejects_empty(self, rng):
        with pytest.raises(ValueError):
            GMMSynopsis(np.empty((0, 2)), rng=rng)


class TestMass:
    def test_total_mass_near_one(self, gmm):
        assert gmm.mass(Rectangle([-10, -10], [10, 10])) == pytest.approx(1.0, abs=1e-3)

    def test_one_mode_half_mass(self, gmm):
        assert gmm.mass(Rectangle([-4, -4], [0, 0])) == pytest.approx(0.5, abs=0.05)

    def test_error_within_measured_delta(self, bimodal_data, gmm):
        rng = np.random.default_rng(3)
        ambient = Rectangle.bounding(bimodal_data)
        for rect in random_rectangles(25, 2, rng, ambient=ambient):
            exact = rect.count_inside(bimodal_data) / bimodal_data.shape[0]
            assert abs(gmm.mass(rect) - exact) <= gmm.delta_ptile + 0.01


class TestSample:
    def test_shape_and_spread(self, gmm, rng):
        s = gmm.sample(2000, rng)
        assert s.shape == (2000, 2)
        # Both modes should be represented.
        assert (s[:, 0] < 0).mean() == pytest.approx(0.5, abs=0.1)


class TestScore:
    def test_score_error_within_measured_delta(self, bimodal_data, gmm):
        rng = np.random.default_rng(9)
        n = bimodal_data.shape[0]
        for _ in range(10):
            v = rng.normal(size=2)
            v /= np.linalg.norm(v)
            k = int(rng.integers(1, n // 4))
            exact = np.sort(bimodal_data @ v)[n - k]
            assert abs(gmm.score(v, k) - exact) <= gmm.delta_pref + 0.05

    def test_k_beyond_population(self, gmm, bimodal_data):
        assert gmm.score(np.array([1.0, 0.0]), bimodal_data.shape[0] + 1) == float("-inf")

    def test_monotone_in_k(self, gmm):
        v = np.array([1.0, 0.0])
        assert gmm.score(v, 1) >= gmm.score(v, 100) >= gmm.score(v, 1000)
