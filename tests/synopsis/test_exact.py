"""Tests for ExactSynopsis (centralized setting, delta = 0)."""

import numpy as np
import pytest

from repro.geometry.rectangle import Rectangle
from repro.synopsis.exact import ExactSynopsis


@pytest.fixture
def syn():
    return ExactSynopsis(np.array([[0.0], [1.0], [2.0], [3.0]]))


class TestBasics:
    def test_deltas_are_zero(self, syn):
        assert syn.delta_ptile == 0.0 and syn.delta_pref == 0.0

    def test_dims(self, syn):
        assert syn.dim == 1 and syn.n_points == 4

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ExactSynopsis(np.empty((0, 2)))

    def test_mass_exact(self, syn):
        assert syn.mass(Rectangle([0.5], [2.5])) == 0.5

    def test_sample_from_population(self, syn, rng):
        s = syn.sample(100, rng)
        assert s.shape == (100, 1)
        assert set(s.ravel()) <= {0.0, 1.0, 2.0, 3.0}

    def test_sample_rejects_nonpositive(self, syn, rng):
        with pytest.raises(ValueError):
            syn.sample(0, rng)


class TestScore:
    def test_kth_largest(self, syn):
        v = np.array([1.0])
        assert syn.score(v, 1) == 3.0
        assert syn.score(v, 2) == 2.0
        assert syn.score(v, 4) == 0.0

    def test_k_beyond_size_is_minus_inf(self, syn):
        assert syn.score(np.array([1.0]), 5) == float("-inf")

    def test_vector_normalized(self, syn):
        assert syn.score(np.array([2.0]), 1) == pytest.approx(3.0)

    def test_negative_direction(self, syn):
        assert syn.score(np.array([-1.0]), 1) == pytest.approx(0.0)

    def test_rejects_zero_vector(self, syn):
        with pytest.raises(ValueError):
            syn.score(np.zeros(1), 1)

    def test_rejects_bad_k(self, syn):
        with pytest.raises(ValueError):
            syn.score(np.array([1.0]), 0)

    def test_matches_sort_on_random_data(self, rng):
        pts = rng.normal(size=(200, 3))
        syn = ExactSynopsis(pts)
        v = rng.normal(size=3)
        v /= np.linalg.norm(v)
        for k in (1, 7, 50, 200):
            assert syn.score(v, k) == pytest.approx(np.sort(pts @ v)[200 - k])
