"""Tests for the ε-sample synopsis."""

import numpy as np
import pytest

from repro.synopsis.sample import EpsilonSampleSynopsis, epsilon_for_sample_size
from repro.workloads.queries import random_rectangles


class TestConstruction:
    def test_from_points_size(self, rng):
        data = rng.uniform(size=(1000, 2))
        syn = EpsilonSampleSynopsis.from_points(data, size=200, rng=rng)
        assert syn.size == 200 and syn.n_points == 1000 and syn.dim == 2

    def test_size_clamped_to_population(self, rng):
        data = rng.uniform(size=(50, 1))
        syn = EpsilonSampleSynopsis.from_points(data, size=500, rng=rng)
        assert syn.size == 50

    def test_rejects_inconsistent_n(self):
        with pytest.raises(ValueError):
            EpsilonSampleSynopsis(np.zeros((10, 1)), n_points=5)

    def test_explicit_delta_respected(self):
        syn = EpsilonSampleSynopsis(np.zeros((10, 1)), n_points=100, delta=0.25)
        assert syn.delta_ptile == 0.25

    def test_default_delta_formula(self):
        syn = EpsilonSampleSynopsis(np.zeros((100, 1)), n_points=1000)
        assert syn.delta_ptile == pytest.approx(epsilon_for_sample_size(100))

    def test_delta_decreases_with_size(self):
        assert epsilon_for_sample_size(400) < epsilon_for_sample_size(100)


class TestPercentileClass:
    def test_mass_error_within_delta(self, rng):
        data = rng.normal(0.5, 0.2, size=(20_000, 2))
        syn = EpsilonSampleSynopsis.from_points(data, size=800, rng=rng)
        for rect in random_rectangles(30, 2, rng):
            exact = rect.count_inside(data) / data.shape[0]
            assert abs(syn.mass(rect) - exact) <= syn.delta_ptile + 1e-9

    def test_sample_draws_from_subsample(self, rng):
        data = rng.uniform(size=(500, 1))
        syn = EpsilonSampleSynopsis.from_points(data, size=50, rng=rng)
        pop = {float(x) for x in syn.subsample.ravel()}
        drawn = syn.sample(200, rng)
        assert all(float(x) in pop for x in drawn.ravel())


class TestPreferenceClass:
    def test_score_error_within_measured_delta(self, rng):
        data = rng.uniform(-1, 1, size=(5000, 2))
        syn = EpsilonSampleSynopsis.from_points(data, size=600, rng=rng)
        for _ in range(20):
            v = rng.normal(size=2)
            v /= np.linalg.norm(v)
            k = int(rng.integers(1, 500))
            exact = np.sort(data @ v)[5000 - k]
            assert abs(syn.score(v, k) - exact) <= syn.delta_pref + 1e-9

    def test_k_beyond_population(self, rng):
        data = rng.uniform(size=(20, 1))
        syn = EpsilonSampleSynopsis.from_points(data, size=10, rng=rng)
        assert syn.score(np.array([1.0]), 21) == float("-inf")

    def test_rank_scaling_hits_right_region(self, rng):
        """k = n/2 should estimate the median projection."""
        data = rng.uniform(0, 1, size=(10_000, 1))
        syn = EpsilonSampleSynopsis.from_points(data, size=1000, rng=rng)
        est = syn.score(np.array([1.0]), 5000)
        assert est == pytest.approx(0.5, abs=0.1)
