"""Tests for Dataset and Repository."""

import numpy as np
import pytest

from repro.core.framework import Dataset, Repository
from repro.errors import ConstructionError
from repro.geometry.rectangle import Rectangle


class TestDataset:
    def test_basic_properties(self):
        ds = Dataset(np.zeros((5, 3)), name="t")
        assert ds.size == 5 and ds.dim == 3 and ds.name == "t"
        assert ds.schema == ("x0", "x1", "x2")

    def test_custom_schema(self):
        ds = Dataset(np.zeros((2, 2)), schema=["lon", "lat"])
        assert ds.schema == ("lon", "lat")

    def test_schema_length_checked(self):
        with pytest.raises(ConstructionError):
            Dataset(np.zeros((2, 2)), schema=["only-one"])

    def test_rejects_empty(self):
        with pytest.raises(ConstructionError):
            Dataset(np.empty((0, 2)))

    def test_rejects_nonfinite(self):
        with pytest.raises(ConstructionError):
            Dataset(np.array([[np.inf]]))

    def test_percentile_mass(self):
        ds = Dataset(np.array([[0.1], [0.6], [0.9]]))
        assert ds.percentile_mass(Rectangle([0.0], [0.5])) == pytest.approx(1 / 3)

    def test_kth_score(self):
        ds = Dataset(np.array([[1.0], [3.0], [2.0]]))
        assert ds.kth_score(np.array([1.0]), 2) == 2.0

    def test_kth_score_beyond_size(self):
        ds = Dataset(np.array([[1.0]]))
        assert ds.kth_score(np.array([1.0]), 2) == float("-inf")

    def test_kth_score_validates(self):
        ds = Dataset(np.array([[1.0]]))
        with pytest.raises(ValueError):
            ds.kth_score(np.zeros(1), 1)
        with pytest.raises(ValueError):
            ds.kth_score(np.array([1.0]), 0)


class TestRepository:
    def test_from_arrays(self):
        repo = Repository.from_arrays([np.zeros((3, 2)), np.ones((4, 2))])
        assert repo.n_datasets == 2
        assert repo.total_points == 7
        assert repo.dim == 2

    def test_names_default(self):
        repo = Repository.from_arrays([np.zeros((1, 1))])
        assert repo[0].name == "dataset-0"

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ConstructionError):
            Repository.from_arrays([np.zeros((2, 1)), np.zeros((2, 2))])

    def test_schema_mismatch_rejected(self):
        a = Dataset(np.zeros((1, 1)), schema=["x"])
        b = Dataset(np.zeros((1, 1)), schema=["y"])
        with pytest.raises(ConstructionError):
            Repository([a, b])

    def test_empty_rejected(self):
        with pytest.raises(ConstructionError):
            Repository([])

    def test_iteration_and_indexing(self):
        repo = Repository.from_arrays([np.zeros((1, 1)), np.ones((1, 1))])
        assert len(repo) == 2
        assert list(repo)[1].points[0, 0] == 1.0
        assert repo[0].points[0, 0] == 0.0

    def test_bounding_box_covers_everything(self, rng):
        arrays = [rng.normal(size=(50, 2)) for _ in range(4)]
        repo = Repository.from_arrays(arrays)
        box = repo.bounding_box()
        for a in arrays:
            assert box.contains_points(a).all()

    def test_bounding_box_padded(self):
        repo = Repository.from_arrays([np.array([[0.0], [1.0]])])
        box = repo.bounding_box(pad_fraction=0.1)
        assert box.lo[0] == pytest.approx(-0.1) and box.hi[0] == pytest.approx(1.1)
