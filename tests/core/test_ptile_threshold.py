"""Theorem 4.4 guarantee tests for PtileThresholdIndex."""

import numpy as np
import pytest

from repro.core.ptile_threshold import PtileThresholdIndex
from repro.errors import ConstructionError, QueryError
from repro.geometry.interval import Interval
from repro.geometry.rectangle import Rectangle
from repro.synopsis.exact import ExactSynopsis
from repro.synopsis.sample import EpsilonSampleSynopsis

QUERY = Rectangle([0.0], [0.5])


@pytest.fixture
def planted(rng):
    """Datasets with planted masses 1/13 .. 12/13 in [0, 0.5]."""
    datasets, masses = [], []
    for i in range(12):
        frac = (i + 1) / 13
        n_in = int(400 * frac)
        pts = np.vstack(
            [
                rng.uniform(0.0, 0.5, size=(n_in, 1)),
                rng.uniform(0.5001, 1.0, size=(400 - n_in, 1)),
            ]
        )
        datasets.append(pts)
        masses.append(n_in / 400)
    return datasets, masses


@pytest.fixture
def index(planted, rng):
    datasets, _ = planted
    return PtileThresholdIndex(
        [ExactSynopsis(p) for p in datasets], eps=0.1, sample_size=48, rng=rng
    )


class TestGuarantees:
    @pytest.mark.parametrize("a_theta", [0.2, 0.5, 0.8])
    def test_recall(self, index, planted, a_theta):
        _, masses = planted
        truth = {i for i, m in enumerate(masses) if m >= a_theta}
        got = index.query(QUERY, a_theta).index_set
        assert truth <= got

    @pytest.mark.parametrize("a_theta", [0.3, 0.6])
    def test_precision_bound(self, index, planted, a_theta):
        """Lemma 4.2: every reported j has M_R(P_j) >= a - 2eps' - 2delta."""
        _, masses = planted
        slack = 2 * index.eps_effective  # delta = 0 (exact synopses)
        for j in index.query(QUERY, a_theta).indexes:
            assert masses[j] >= a_theta - slack - 1e-9

    def test_no_duplicates(self, index):
        res = index.query(QUERY, 0.1)
        assert len(res.indexes) == len(set(res.indexes))

    def test_structure_restored_after_query(self, index):
        first = index.query(QUERY, 0.4).index_set
        second = index.query(QUERY, 0.4).index_set
        assert first == second

    def test_zero_threshold_reports_everything(self, index):
        assert index.query(QUERY, 0.0).out_size == 12

    def test_impossible_threshold_near_one(self, index, planted):
        _, masses = planted
        got = index.query(QUERY, 1.0).index_set
        # Only near-full-mass datasets may appear (within the slack).
        for j in got:
            assert masses[j] >= 1.0 - 2 * index.eps_effective - 1e-9

    def test_query_expression_threshold_only(self, index):
        res = index.query_expression(QUERY, Interval(0.4, 1.0))
        assert res.index_set == index.query(QUERY, 0.4).index_set
        with pytest.raises(QueryError):
            index.query_expression(QUERY, Interval(0.2, 0.6))


class TestFederated:
    def test_recall_with_sample_synopses(self, planted, rng):
        datasets, masses = planted
        syns = [
            EpsilonSampleSynopsis.from_points(p, size=150, rng=rng) for p in datasets
        ]
        index = PtileThresholdIndex(syns, eps=0.1, sample_size=48, rng=rng)
        a_theta = 0.5
        truth = {i for i, m in enumerate(masses) if m >= a_theta}
        assert truth <= index.query(QUERY, a_theta).index_set

    def test_precision_uses_per_dataset_delta(self, planted, rng):
        datasets, masses = planted
        syns = [
            EpsilonSampleSynopsis.from_points(p, size=150, rng=rng) for p in datasets
        ]
        index = PtileThresholdIndex(syns, eps=0.1, sample_size=48, rng=rng)
        a_theta = 0.6
        for j in index.query(QUERY, a_theta).indexes:
            slack = 2 * index.eps_effective + 2 * index.delta_of(j)
            assert masses[j] >= a_theta - slack - 1e-9

    def test_global_delta_override(self, planted, rng):
        datasets, _ = planted
        syns = [EpsilonSampleSynopsis.from_points(p, size=100, rng=rng) for p in datasets]
        index = PtileThresholdIndex(syns, eps=0.1, delta=0.3, sample_size=24, rng=rng)
        assert all(index.delta_of(k) == 0.3 for k in index.keys)


class TestDynamics:
    def test_insert_visible(self, index, rng):
        # A dataset entirely inside the query region.
        new = ExactSynopsis(rng.uniform(0.0, 0.5, size=(200, 1)))
        key = index.insert_synopsis(new)
        assert key in index.query(QUERY, 0.9).index_set

    def test_delete_hides(self, index):
        res = index.query(QUERY, 0.2)
        victim = res.indexes[0]
        index.delete_synopsis(victim)
        assert victim not in index.query(QUERY, 0.2).index_set

    def test_delete_unknown_raises(self, index):
        with pytest.raises(KeyError):
            index.delete_synopsis(999)

    def test_insert_dim_mismatch(self, index, rng):
        with pytest.raises(ConstructionError):
            index.insert_synopsis(ExactSynopsis(rng.uniform(size=(10, 2))))

    def test_rangetree_engine_rejects_dynamics(self, planted, rng):
        datasets, _ = planted
        index = PtileThresholdIndex(
            [ExactSynopsis(p) for p in datasets[:4]],
            eps=0.2,
            sample_size=8,
            engine="rangetree",
            rng=rng,
        )
        with pytest.raises(ConstructionError):
            index.insert_synopsis(ExactSynopsis(datasets[0]))


class TestEngines:
    def test_rangetree_matches_kd(self, planted):
        datasets, _ = planted
        syns = [ExactSynopsis(p) for p in datasets[:6]]
        kd = PtileThresholdIndex(
            syns, eps=0.2, sample_size=10, engine="kd", rng=np.random.default_rng(5)
        )
        rt = PtileThresholdIndex(
            syns, eps=0.2, sample_size=10, engine="rangetree", rng=np.random.default_rng(5)
        )
        for a in (0.1, 0.4, 0.7):
            assert kd.query(QUERY, a).index_set == rt.query(QUERY, a).index_set

    def test_unknown_engine(self, planted, rng):
        datasets, _ = planted
        with pytest.raises(ConstructionError):
            PtileThresholdIndex(
                [ExactSynopsis(datasets[0])], engine="btree", rng=rng
            )


class TestValidation:
    def test_bad_a_theta(self, index):
        with pytest.raises(QueryError):
            index.query(QUERY, 1.5)

    def test_dim_mismatch_query(self, index):
        with pytest.raises(QueryError):
            index.query(Rectangle([0.0, 0.0], [1.0, 1.0]), 0.5)

    def test_bad_eps(self, planted, rng):
        datasets, _ = planted
        with pytest.raises(ConstructionError):
            PtileThresholdIndex([ExactSynopsis(datasets[0])], eps=0.0, rng=rng)

    def test_empty_synopses(self, rng):
        with pytest.raises(ConstructionError):
            PtileThresholdIndex([], rng=rng)

    def test_mixed_dims(self, rng):
        with pytest.raises(ConstructionError):
            PtileThresholdIndex(
                [
                    ExactSynopsis(rng.uniform(size=(5, 1))),
                    ExactSynopsis(rng.uniform(size=(5, 2))),
                ],
                rng=rng,
            )


class TestDiagnostics:
    def test_coreset_mass_close_to_true(self, index, planted):
        _, masses = planted
        for key in index.keys:
            est = index.coreset_mass(key, QUERY)
            assert abs(est - masses[key]) <= index.eps_effective + 1e-9

    def test_record_times(self, index):
        res = index.query(QUERY, 0.2, record_times=True)
        assert res.start_time is not None and res.end_time is not None
        assert len(res.emit_times) == res.out_size
        assert res.max_delay() is not None

    def test_2d_guarantees(self, rng):
        datasets = []
        masses = []
        region = Rectangle([0.0, 0.0], [0.5, 0.5])
        for i in range(8):
            frac = (i + 1) / 9
            n_in = int(300 * frac)
            inside = rng.uniform(0.0, 0.5, size=(n_in, 2))
            outside = rng.uniform(0.51, 1.0, size=(300 - n_in, 2))
            datasets.append(np.vstack([inside, outside]))
            masses.append(n_in / 300)
        idx = PtileThresholdIndex(
            [ExactSynopsis(p) for p in datasets], eps=0.15, sample_size=8, rng=rng
        )
        got = idx.query(region, 0.5).index_set
        truth = {i for i, m in enumerate(masses) if m >= 0.5}
        assert truth <= got
        slack = 2 * idx.eps_effective
        assert all(masses[j] >= 0.5 - slack - 1e-9 for j in got)
