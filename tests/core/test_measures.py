"""Tests for measure functions over datasets and synopses."""

import numpy as np
import pytest

from repro.core.framework import Dataset
from repro.core.measures import PercentileMeasure, PreferenceMeasure
from repro.geometry.rectangle import Rectangle
from repro.synopsis.exact import ExactSynopsis


class TestPercentileMeasure:
    def test_evaluate_dataset(self):
        m = PercentileMeasure(Rectangle([0.0], [1.0]))
        ds = Dataset(np.array([[0.5], [2.0], [0.9], [3.0]]))
        assert m.evaluate(ds) == 0.5

    def test_evaluate_synopsis_matches_exact(self, rng):
        pts = rng.uniform(size=(500, 2))
        m = PercentileMeasure(Rectangle([0.0, 0.0], [0.5, 0.5]))
        assert m.evaluate(Dataset(pts)) == m.evaluate_synopsis(ExactSynopsis(pts))

    def test_measure_class_tag(self):
        assert PercentileMeasure(Rectangle([0.0], [1.0])).measure_class == "ptile"

    def test_dim_mismatch(self):
        m = PercentileMeasure(Rectangle([0.0, 0.0], [1.0, 1.0]))
        with pytest.raises(ValueError):
            m.evaluate(Dataset(np.zeros((2, 1))))


class TestPreferenceMeasure:
    def test_evaluate(self):
        m = PreferenceMeasure(np.array([1.0, 0.0]), k=1)
        ds = Dataset(np.array([[1.0, 9.0], [3.0, 0.0]]))
        assert m.evaluate(ds) == 3.0

    def test_vector_normalized_at_construction(self):
        m = PreferenceMeasure(np.array([3.0, 4.0]), k=1)
        assert np.linalg.norm(m.vector) == pytest.approx(1.0)

    def test_evaluate_synopsis_matches_exact(self, rng):
        pts = rng.normal(size=(300, 2))
        m = PreferenceMeasure(np.array([0.6, 0.8]), k=5)
        assert m.evaluate(Dataset(pts)) == pytest.approx(
            m.evaluate_synopsis(ExactSynopsis(pts))
        )

    def test_measure_class_tag(self):
        assert PreferenceMeasure(np.ones(2), 1).measure_class == "pref"

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            PreferenceMeasure(np.zeros(2), 1)
        with pytest.raises(ValueError):
            PreferenceMeasure(np.ones(2), 0)
        with pytest.raises(ValueError):
            PreferenceMeasure(np.ones((2, 2)), 1)
