"""Tests for the shared Ptile machinery (_ptile_common)."""

import numpy as np
import pytest

from repro.core._ptile_common import (
    DEFAULT_POINT_BUDGET,
    build_engine,
    draw_coreset,
    max_sample_for_budget,
    range_point_matrix,
    resolve_deltas,
    resolve_sample_size,
    threshold_point_matrix,
)
from repro.errors import ConstructionError
from repro.synopsis.exact import ExactSynopsis
from repro.synopsis.kernel import DirectionQuantileSynopsis


class TestResolveDeltas:
    def test_global_override(self, rng):
        syns = [ExactSynopsis(rng.uniform(size=(5, 1))) for _ in range(3)]
        assert resolve_deltas(syns, 0.2) == [0.2, 0.2, 0.2]

    def test_per_synopsis(self, rng):
        syns = [ExactSynopsis(rng.uniform(size=(5, 1)))]
        assert resolve_deltas(syns, None) == [0.0]

    def test_bad_global(self, rng):
        syns = [ExactSynopsis(rng.uniform(size=(5, 1)))]
        with pytest.raises(ConstructionError):
            resolve_deltas(syns, 1.0)
        with pytest.raises(ConstructionError):
            resolve_deltas(syns, -0.1)

    def test_unsupported_synopsis(self, rng):
        syns = [DirectionQuantileSynopsis(rng.uniform(size=(100, 2)), rng=rng)]
        with pytest.raises(ConstructionError):
            resolve_deltas(syns, None)


class TestSampleSizeResolution:
    def test_budget_bound(self):
        for dim in (1, 2, 3):
            s = max_sample_for_budget(dim, DEFAULT_POINT_BUDGET)
            # The induced rectangle count must respect the budget.
            per_axis = s * (s + 1) / 2
            assert per_axis ** dim <= DEFAULT_POINT_BUDGET * 4  # headroom
            assert s >= 2

    def test_budget_shrinks_with_dim(self):
        assert max_sample_for_budget(1, 4096) > max_sample_for_budget(2, 4096)

    def test_explicit_size_wins(self):
        assert resolve_sample_size(0.1, None, 10, 7, dim=1) == 7

    def test_explicit_size_validated(self):
        with pytest.raises(ConstructionError):
            resolve_sample_size(0.1, None, 10, 1, dim=1)

    def test_theoretical_capped_by_budget(self):
        tight = resolve_sample_size(0.01, 0.01, 100, None, dim=2)
        assert tight <= max_sample_for_budget(2, DEFAULT_POINT_BUDGET)

    def test_loose_eps_below_cap(self):
        loose = resolve_sample_size(0.5, 0.5, 2, None, dim=1)
        assert loose < max_sample_for_budget(1, DEFAULT_POINT_BUDGET)


class TestDrawCoreset:
    def test_shape(self, rng):
        syn = ExactSynopsis(rng.uniform(size=(100, 2)))
        core = draw_coreset(syn, 16, rng)
        assert core.shape == (16, 2)


class TestBuildEngine:
    def test_kd(self, rng):
        engine = build_engine(rng.uniform(size=(10, 2)), list(range(10)), "kd", 8)
        assert len(engine) == 10

    def test_rangetree(self, rng):
        engine = build_engine(
            rng.uniform(size=(10, 2)), list(range(10)), "rangetree", 8
        )
        assert len(engine) == 10

    def test_unknown(self, rng):
        with pytest.raises(ConstructionError):
            build_engine(rng.uniform(size=(5, 1)), [0, 1, 2, 3, 4], "btree", 8)


class TestPointMatrixAssembly:
    """One-shot mapped-point assembly, including the zero-pair crash path."""

    def test_range_matrix_layout_matches_row_concat(self, rng):
        d, n = 2, 7
        in_lo = rng.uniform(size=(n, d))
        in_hi = rng.uniform(size=(n, d))
        out_lo = rng.uniform(size=(n, d))
        out_hi = rng.uniform(size=(n, d))
        w = rng.uniform(size=n)
        mat = range_point_matrix(in_lo, in_hi, out_lo, out_hi, w, 0.05)
        assert mat.shape == (n, 4 * d + 2)
        for p in range(n):
            row = np.concatenate(
                [in_lo[p], out_lo[p], in_hi[p], out_hi[p],
                 [w[p] + 0.05, w[p] - 0.05]]
            )
            assert np.array_equal(mat[p], row)

    def test_threshold_matrix_layout_matches_row_concat(self, rng):
        d, n = 3, 5
        lo = rng.uniform(size=(n, d))
        hi = rng.uniform(size=(n, d))
        w = rng.uniform(size=n)
        mat = threshold_point_matrix(lo, hi, w, 0.1)
        assert mat.shape == (n, 2 * d + 1)
        for p in range(n):
            assert np.array_equal(
                mat[p], np.concatenate([lo[p], hi[p], [w[p] + 0.1]])
            )

    def test_zero_pairs_give_shaped_empty_matrix(self):
        """Regression: zero maximal pairs must yield a (0, 4d+2) matrix,
        not the ragged 1-d array ``np.asarray([])`` produced before."""
        d = 2
        empty = np.empty((0, d))
        mat = range_point_matrix(empty, empty, empty, empty, np.empty(0), 0.0)
        assert mat.shape == (0, 4 * d + 2)
        thr = threshold_point_matrix(empty, empty, np.empty(0), 0.0)
        assert thr.shape == (0, 2 * d + 1)

    def test_empty_matrix_stacks_with_populated(self, rng):
        """The crash path: vstack of a zero-pair dataset's matrix with a
        populated one must produce a well-shaped combined matrix."""
        d = 1
        empty = range_point_matrix(
            np.empty((0, d)), np.empty((0, d)), np.empty((0, d)),
            np.empty((0, d)), np.empty(0), 0.0,
        )
        full = range_point_matrix(
            rng.uniform(size=(3, d)), rng.uniform(size=(3, d)),
            rng.uniform(size=(3, d)), rng.uniform(size=(3, d)),
            rng.uniform(size=3), 0.0,
        )
        stacked = np.vstack([empty, full])
        assert stacked.shape == (3, 4 * d + 2)

    def test_degenerate_bounding_box_raises_cleanly(self):
        """An all-degenerate box yields zero pairs for every dataset; the
        range index must refuse with a ConstructionError, not crash on a
        ragged array deep inside the backend."""
        from repro.core.ptile_range import PtileRangeIndex
        from repro.geometry.rectangle import Rectangle

        data = np.full((20, 1), 0.5)
        syns = [ExactSynopsis(data) for _ in range(3)]
        with pytest.raises(ConstructionError):
            PtileRangeIndex(
                syns, eps=0.3, sample_size=4,
                bounding_box=Rectangle([0.5], [0.5]),
                rng=np.random.default_rng(0),
            )
