"""Tests for the shared Ptile machinery (_ptile_common)."""

import numpy as np
import pytest

from repro.core._ptile_common import (
    DEFAULT_POINT_BUDGET,
    build_engine,
    draw_coreset,
    max_sample_for_budget,
    resolve_deltas,
    resolve_sample_size,
)
from repro.errors import ConstructionError
from repro.synopsis.exact import ExactSynopsis
from repro.synopsis.kernel import DirectionQuantileSynopsis


class TestResolveDeltas:
    def test_global_override(self, rng):
        syns = [ExactSynopsis(rng.uniform(size=(5, 1))) for _ in range(3)]
        assert resolve_deltas(syns, 0.2) == [0.2, 0.2, 0.2]

    def test_per_synopsis(self, rng):
        syns = [ExactSynopsis(rng.uniform(size=(5, 1)))]
        assert resolve_deltas(syns, None) == [0.0]

    def test_bad_global(self, rng):
        syns = [ExactSynopsis(rng.uniform(size=(5, 1)))]
        with pytest.raises(ConstructionError):
            resolve_deltas(syns, 1.0)
        with pytest.raises(ConstructionError):
            resolve_deltas(syns, -0.1)

    def test_unsupported_synopsis(self, rng):
        syns = [DirectionQuantileSynopsis(rng.uniform(size=(100, 2)), rng=rng)]
        with pytest.raises(ConstructionError):
            resolve_deltas(syns, None)


class TestSampleSizeResolution:
    def test_budget_bound(self):
        for dim in (1, 2, 3):
            s = max_sample_for_budget(dim, DEFAULT_POINT_BUDGET)
            # The induced rectangle count must respect the budget.
            per_axis = s * (s + 1) / 2
            assert per_axis ** dim <= DEFAULT_POINT_BUDGET * 4  # headroom
            assert s >= 2

    def test_budget_shrinks_with_dim(self):
        assert max_sample_for_budget(1, 4096) > max_sample_for_budget(2, 4096)

    def test_explicit_size_wins(self):
        assert resolve_sample_size(0.1, None, 10, 7, dim=1) == 7

    def test_explicit_size_validated(self):
        with pytest.raises(ConstructionError):
            resolve_sample_size(0.1, None, 10, 1, dim=1)

    def test_theoretical_capped_by_budget(self):
        tight = resolve_sample_size(0.01, 0.01, 100, None, dim=2)
        assert tight <= max_sample_for_budget(2, DEFAULT_POINT_BUDGET)

    def test_loose_eps_below_cap(self):
        loose = resolve_sample_size(0.5, 0.5, 2, None, dim=1)
        assert loose < max_sample_for_budget(1, DEFAULT_POINT_BUDGET)


class TestDrawCoreset:
    def test_shape(self, rng):
        syn = ExactSynopsis(rng.uniform(size=(100, 2)))
        core = draw_coreset(syn, 16, rng)
        assert core.shape == (16, 2)


class TestBuildEngine:
    def test_kd(self, rng):
        engine = build_engine(rng.uniform(size=(10, 2)), list(range(10)), "kd", 8)
        assert len(engine) == 10

    def test_rangetree(self, rng):
        engine = build_engine(
            rng.uniform(size=(10, 2)), list(range(10)), "rangetree", 8
        )
        assert len(engine) == 10

    def test_unknown(self, rng):
        with pytest.raises(ConstructionError):
            build_engine(rng.uniform(size=(5, 1)), [0, 1, 2, 3, 4], "btree", 8)
