"""Tests for QueryResult delay bookkeeping."""

from repro.core.results import QueryResult


class TestQueryResult:
    def test_defaults(self):
        r = QueryResult()
        assert r.indexes == [] and r.out_size == 0 and r.index_set == set()
        assert r.delays() == [] and r.max_delay() is None

    def test_index_set(self):
        r = QueryResult(indexes=[3, 1, 2])
        assert r.index_set == {1, 2, 3} and r.out_size == 3

    def test_delays(self):
        r = QueryResult(
            indexes=[0, 1],
            start_time=0.0,
            emit_times=[1.0, 1.5],
            end_time=4.0,
        )
        assert r.delays() == [1.0, 0.5, 2.5]
        assert r.max_delay() == 2.5

    def test_delays_need_all_stamps(self):
        r = QueryResult(indexes=[0], emit_times=[1.0])
        assert r.delays() == []

    def test_stats_free_form(self):
        r = QueryResult()
        r.stats["x"] = 1
        assert r.stats == {"x": 1}


class TestBitmapBacked:
    def test_lazy_materialization_sorted(self):
        from repro.core.bitset import DatasetBitmap

        r = QueryResult(bitmap=DatasetBitmap.from_indices([7, 1, 70], 80))
        assert r.out_size == 3  # popcount, no list yet
        assert r.indexes == [1, 7, 70]
        assert r.index_set == {1, 7, 70}

    def test_indexes_assignment_drops_stale_bitmap(self):
        from repro.core.bitset import DatasetBitmap

        r = QueryResult(bitmap=DatasetBitmap.from_indices([1, 2, 3], 10))
        r.indexes = [5]
        # Both representations must agree; the bitmap encoded {1,2,3} and
        # would otherwise leak through bitmap-preferring consumers (the
        # server's bitset wire encoder).
        assert r.bitmap is None
        assert r.indexes == [5] and r.out_size == 1 and r.index_set == {5}

    def test_index_set_cache_revalidates_on_append(self):
        r = QueryResult(indexes=[1, 2])
        assert r.index_set == {1, 2}
        r.indexes.append(3)  # enumeration structures append in place
        assert r.index_set == {1, 2, 3}
