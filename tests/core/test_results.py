"""Tests for QueryResult delay bookkeeping."""

from repro.core.results import QueryResult


class TestQueryResult:
    def test_defaults(self):
        r = QueryResult()
        assert r.indexes == [] and r.out_size == 0 and r.index_set == set()
        assert r.delays() == [] and r.max_delay() is None

    def test_index_set(self):
        r = QueryResult(indexes=[3, 1, 2])
        assert r.index_set == {1, 2, 3} and r.out_size == 3

    def test_delays(self):
        r = QueryResult(
            indexes=[0, 1],
            start_time=0.0,
            emit_times=[1.0, 1.5],
            end_time=4.0,
        )
        assert r.delays() == [1.0, 0.5, 2.5]
        assert r.max_delay() == 2.5

    def test_delays_need_all_stamps(self):
        r = QueryResult(indexes=[0], emit_times=[1.0])
        assert r.delays() == []

    def test_stats_free_form(self):
        r = QueryResult()
        r.stats["x"] = 1
        assert r.stats == {"x": 1}
