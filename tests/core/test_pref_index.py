"""Theorem 5.4 guarantee tests for PrefIndex."""

import numpy as np
import pytest

from repro.core.pref_index import PrefIndex
from repro.errors import ConstructionError, QueryError
from repro.geometry.interval import Interval
from repro.synopsis.exact import ExactSynopsis
from repro.synopsis.kernel import DirectionQuantileSynopsis

K = 5


@pytest.fixture
def planted(rng):
    """20 datasets in the unit ball with varying top-score levels."""
    datasets = []
    for i in range(20):
        level = (i + 1) / 21  # controls how far out the blob reaches
        pts = rng.uniform(-0.3, 0.3, size=(200, 2)) * level + rng.uniform(
            -0.2, 0.2, size=2
        ) * level
        datasets.append(np.clip(pts, -0.99, 0.99))
    return datasets


@pytest.fixture
def index(planted):
    return PrefIndex([ExactSynopsis(p) for p in planted], k=K, eps=0.1)


def exact_score(pts, u, k=K):
    return float(np.sort(pts @ u)[len(pts) - k])


class TestGuarantees:
    @pytest.mark.parametrize("a_theta", [-0.2, 0.0, 0.15])
    def test_recall(self, index, planted, a_theta, rng):
        for _ in range(5):
            u = rng.normal(size=2)
            u /= np.linalg.norm(u)
            truth = {i for i, p in enumerate(planted) if exact_score(p, u) >= a_theta}
            assert truth <= index.query(u, a_theta).index_set

    @pytest.mark.parametrize("a_theta", [0.0, 0.1])
    def test_precision(self, index, planted, a_theta, rng):
        """Lemma 5.2: reported j has omega_k(P_j, u) >= a - 2eps - 2delta."""
        for _ in range(5):
            u = rng.normal(size=2)
            u /= np.linalg.norm(u)
            for j in index.query(u, a_theta).indexes:
                assert exact_score(planted[j], u) >= a_theta - 2 * index.eps - 1e-9

    def test_no_duplicates(self, index, rng):
        u = rng.normal(size=2)
        res = index.query(u, -10.0)
        assert len(res.indexes) == len(set(res.indexes))
        assert res.out_size == 20

    def test_negative_direction_uses_symmetric_net(self, index, planted):
        """Central symmetry: -u queries are as accurate as +u queries."""
        u = np.array([1.0, 0.0])
        for j in index.query(-u, 0.0).indexes:
            assert exact_score(planted[j], -u) >= 0.0 - 2 * index.eps - 1e-9

    def test_net_size_order(self, planted):
        fine = PrefIndex([ExactSynopsis(p) for p in planted[:3]], k=1, eps=0.05)
        coarse = PrefIndex([ExactSynopsis(p) for p in planted[:3]], k=1, eps=0.4)
        assert fine.n_directions > coarse.n_directions


class TestSmallDatasets:
    def test_k_larger_than_dataset_never_reported(self, rng):
        tiny = ExactSynopsis(rng.uniform(-0.5, 0.5, size=(3, 2)))
        big = ExactSynopsis(rng.uniform(-0.5, 0.5, size=(100, 2)))
        index = PrefIndex([tiny, big], k=10, eps=0.2)
        res = index.query(np.array([1.0, 0.0]), a_theta=-0.99)
        assert 0 not in res.index_set
        assert 1 in res.index_set


class TestFederated:
    def test_kernel_synopses(self, planted, rng):
        syns = [DirectionQuantileSynopsis(p, eps_dir=0.1, rng=rng) for p in planted]
        index = PrefIndex(syns, k=K, eps=0.1)
        u = np.array([0.6, 0.8])
        a_theta = 0.1
        truth = {i for i, p in enumerate(planted) if exact_score(p, u) >= a_theta}
        got = index.query(u, a_theta).index_set
        assert truth <= got
        for j in got:
            slack = 2 * index.eps + 2 * index.delta_of(j)
            assert exact_score(planted[j], u) >= a_theta - slack - 1e-9

    def test_global_delta_override(self, planted):
        index = PrefIndex(
            [ExactSynopsis(p) for p in planted[:4]], k=1, eps=0.2, delta=0.25
        )
        assert all(index.delta_of(key) == 0.25 for key in range(4))


class TestDynamics:
    def test_insert(self, index, rng):
        strong = ExactSynopsis(np.full((50, 2), 0.7) + rng.uniform(-0.01, 0.01, (50, 2)))
        key = index.insert_synopsis(strong)
        u = np.array([1.0, 1.0]) / np.sqrt(2)
        assert key in index.query(u, 0.5).index_set

    def test_delete(self, index, rng):
        u = rng.normal(size=2)
        res = index.query(u, -10.0)
        victim = res.indexes[0]
        index.delete_synopsis(victim)
        assert victim not in index.query(u, -10.0).index_set
        with pytest.raises(KeyError):
            index.delete_synopsis(victim)

    def test_many_inserts_trigger_rebuild(self, planted, rng):
        index = PrefIndex([ExactSynopsis(p) for p in planted[:4]], k=1, eps=0.3)
        keys = [
            index.insert_synopsis(ExactSynopsis(rng.uniform(-0.5, 0.5, size=(30, 2))))
            for _ in range(30)
        ]
        res = index.query(np.array([1.0, 0.0]), -10.0)
        assert set(keys) <= res.index_set
        assert res.out_size == 34


class TestValidation:
    def test_bad_constructor_args(self, planted):
        syns = [ExactSynopsis(planted[0])]
        with pytest.raises(ConstructionError):
            PrefIndex([], k=1)
        with pytest.raises(ConstructionError):
            PrefIndex(syns, k=0)
        with pytest.raises(ConstructionError):
            PrefIndex(syns, k=1, eps=0.0)

    def test_query_vector_shape(self, index):
        with pytest.raises(QueryError):
            index.query(np.ones(3), 0.0)

    def test_query_expression_two_sided_rejected(self, index):
        with pytest.raises(QueryError):
            index.query_expression(np.array([1.0, 0.0]), Interval(0.0, 0.5))

    def test_record_times(self, index):
        res = index.query(np.array([1.0, 0.0]), -10.0, record_times=True)
        assert len(res.emit_times) == res.out_size
        assert res.max_delay() is not None
