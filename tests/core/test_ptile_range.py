"""Theorem 4.11 guarantee tests for PtileRangeIndex."""

import numpy as np
import pytest

from repro.core.ptile_range import PtileRangeIndex
from repro.core.ptile_threshold import PtileThresholdIndex
from repro.errors import ConstructionError, QueryError
from repro.geometry.interval import Interval
from repro.geometry.rectangle import Rectangle
from repro.synopsis.exact import ExactSynopsis
from repro.synopsis.sample import EpsilonSampleSynopsis

QUERY = Rectangle([0.0], [0.5])


@pytest.fixture
def planted(rng):
    datasets, masses = [], []
    for i in range(12):
        frac = (i + 1) / 13
        n_in = int(400 * frac)
        pts = np.vstack(
            [
                rng.uniform(0.0, 0.5, size=(n_in, 1)),
                rng.uniform(0.5001, 1.0, size=(400 - n_in, 1)),
            ]
        )
        datasets.append(pts)
        masses.append(n_in / 400)
    return datasets, masses


@pytest.fixture
def index(planted, rng):
    datasets, _ = planted
    return PtileRangeIndex(
        [ExactSynopsis(p) for p in datasets], eps=0.1, sample_size=32, rng=rng
    )


class TestGuarantees:
    @pytest.mark.parametrize("theta", [(0.2, 0.5), (0.4, 0.7), (0.0, 0.3)])
    def test_recall(self, index, planted, theta):
        _, masses = planted
        iv = Interval(*theta)
        truth = {i for i, m in enumerate(masses) if m in iv}
        assert truth <= index.query(QUERY, iv).index_set

    @pytest.mark.parametrize("theta", [(0.3, 0.6), (0.5, 0.8)])
    def test_two_sided_precision(self, index, planted, theta):
        """Lemma 4.8: a - 2eps' <= M_R(P_j) <= b + 2eps' for exact synopses."""
        _, masses = planted
        a, b = theta
        slack = 2 * index.eps_effective
        for j in index.query(QUERY, Interval(a, b)).indexes:
            assert a - slack - 1e-9 <= masses[j] <= b + slack + 1e-9

    def test_no_duplicates_lemma_4_9(self, index):
        res = index.query(QUERY, Interval(0.0, 1.0))
        assert len(res.indexes) == len(set(res.indexes))
        assert res.out_size == 12

    def test_upper_bound_actually_filters(self, index, planted):
        """Unlike the threshold structure, high-mass datasets are excluded."""
        _, masses = planted
        got = index.query(QUERY, Interval(0.0, 0.25)).index_set
        heavy = {i for i, m in enumerate(masses) if m > 0.25 + 2 * index.eps_effective}
        assert not (got & heavy)

    def test_structure_restored_after_query(self, index):
        iv = Interval(0.2, 0.6)
        assert index.query(QUERY, iv).index_set == index.query(QUERY, iv).index_set

    def test_figure_2_scenario(self, planted, rng):
        """The Section 4.3 counterexample: the threshold structure's logic
        (any sufficiently-heavy sub-rectangle qualifies) over-reports on
        two-sided intervals; the maximal-pair structure does not."""
        datasets, masses = planted
        syns = [ExactSynopsis(p) for p in datasets]
        heavy = [i for i, m in enumerate(masses) if m > 0.9]
        assert heavy, "fixture should contain a near-full-mass dataset"
        range_idx = PtileRangeIndex(syns, eps=0.1, sample_size=32, rng=rng)
        got = range_idx.query(QUERY, Interval(0.1, 0.3)).index_set
        slack = 2 * range_idx.eps_effective
        assert all(masses[j] <= 0.3 + slack + 1e-9 for j in got)


class TestFederated:
    def test_recall_and_precision(self, planted, rng):
        datasets, masses = planted
        syns = [
            EpsilonSampleSynopsis.from_points(p, size=150, rng=rng) for p in datasets
        ]
        index = PtileRangeIndex(syns, eps=0.1, sample_size=32, rng=rng)
        iv = Interval(0.3, 0.7)
        truth = {i for i, m in enumerate(masses) if m in iv}
        got = index.query(QUERY, iv).index_set
        assert truth <= got
        for j in got:
            slack = 2 * index.eps_effective + 2 * index.delta_of(j)
            assert 0.3 - slack - 1e-9 <= masses[j] <= 0.7 + slack + 1e-9


class TestBoundingBox:
    def test_auto_box_contains_coresets(self, index):
        for key in index.keys:
            assert index.bounding_box.contains_points(index.coreset(key)).all()

    def test_explicit_box_too_small_rejected(self, planted, rng):
        datasets, _ = planted
        with pytest.raises(ConstructionError):
            PtileRangeIndex(
                [ExactSynopsis(p) for p in datasets],
                sample_size=16,
                bounding_box=Rectangle([0.4], [0.6]),
                rng=rng,
            )

    def test_query_clipped_to_box(self, index):
        """Oversized query rectangles behave like the box-clipped ones."""
        wide = index.query(Rectangle([-100.0], [0.5]), Interval(0.3, 0.8))
        narrow = index.query(Rectangle([index.bounding_box.lo[0]], [0.5]),
                             Interval(0.3, 0.8))
        assert wide.index_set == narrow.index_set


class TestDynamics:
    def test_insert_then_query(self, index, rng):
        new = ExactSynopsis(rng.uniform(0.0, 0.5, size=(200, 1)))
        key = index.insert_synopsis(new)
        assert key in index.query(QUERY, Interval(0.8, 1.0)).index_set

    def test_delete(self, index):
        res = index.query(QUERY, Interval(0.0, 1.0))
        victim = res.indexes[0]
        index.delete_synopsis(victim)
        assert victim not in index.query(QUERY, Interval(0.0, 1.0)).index_set
        with pytest.raises(KeyError):
            index.delete_synopsis(victim)

    def test_correctness_preserved_after_churn(self, planted, rng):
        datasets, masses = planted
        index = PtileRangeIndex(
            [ExactSynopsis(p) for p in datasets], eps=0.15, sample_size=16, rng=rng
        )
        index.delete_synopsis(0)
        index.delete_synopsis(5)
        keys = [index.insert_synopsis(ExactSynopsis(datasets[0]))]
        iv = Interval(0.3, 0.7)
        got = index.query(QUERY, iv).index_set
        truth = {i for i, m in enumerate(masses) if m in iv and i not in (0, 5)}
        if masses[0] in iv:
            truth |= set(keys)
        assert truth <= got


class TestValidation:
    def test_theta_disjoint_from_unit(self, index):
        with pytest.raises(QueryError):
            index.query(QUERY, Interval(1.5, 2.0))

    def test_dim_mismatch(self, index):
        with pytest.raises(QueryError):
            index.query(Rectangle([0, 0], [1, 1]), Interval(0.0, 1.0))

    def test_threshold_index_equivalence(self, planted):
        """theta = [a, 1] on the range structure matches the threshold
        structure built from the same coresets (same rng seed)."""
        datasets, _ = planted
        syns = [ExactSynopsis(p) for p in datasets]
        thr = PtileThresholdIndex(
            syns, eps=0.15, sample_size=24, rng=np.random.default_rng(9)
        )
        rng_idx = PtileRangeIndex(
            syns, eps=0.15, sample_size=24, rng=np.random.default_rng(9)
        )
        for a in (0.2, 0.5, 0.8):
            assert (
                thr.query(QUERY, a).index_set
                == rng_idx.query(QUERY, Interval(a, 1.0)).index_set
            )
