"""Tests for the evaluation/audit utilities."""

import numpy as np
import pytest

from repro.core.ptile_range import PtileRangeIndex
from repro.evaluation import (
    GuaranteeReport,
    audit_interval_query,
    audit_ptile_query,
    exact_pref_scores,
    exact_ptile_masses,
)
from repro.geometry.interval import Interval
from repro.geometry.rectangle import Rectangle
from repro.synopsis.exact import ExactSynopsis


class TestGuaranteeReport:
    def test_perfect(self):
        rep = GuaranteeReport(truth={1, 2}, reported={1, 2})
        assert rep.recall == 1.0 and rep.precision == 1.0
        assert rep.guarantees_hold and rep.missed == set()

    def test_missed(self):
        rep = GuaranteeReport(truth={1, 2}, reported={1})
        assert rep.missed == {2}
        assert rep.recall == 0.5
        assert not rep.guarantees_hold

    def test_empty_truth(self):
        rep = GuaranteeReport(truth=set(), reported={5})
        assert rep.recall == 1.0 and rep.precision == 0.0

    def test_violations_break_guarantee(self):
        rep = GuaranteeReport(truth=set(), reported=set(),
                              slack_violations=[(3, 0.9, 0.1)])
        assert not rep.guarantees_hold


class TestAuditIntervalQuery:
    def test_within_slack_ok(self):
        rep = audit_interval_query(
            [0.5, 0.35, 0.1], {0, 1}, Interval(0.4, 1.0), slack_of=lambda j: 0.1
        )
        assert rep.truth == {0}
        assert rep.slack_violations == []
        assert rep.recall == 1.0

    def test_outside_slack_flagged(self):
        rep = audit_interval_query(
            [0.5, 0.1], {0, 1}, Interval(0.4, 1.0), slack_of=lambda j: 0.05
        )
        assert len(rep.slack_violations) == 1
        assert rep.slack_violations[0][0] == 1

    def test_per_dataset_slack(self):
        rep = audit_interval_query(
            [0.3, 0.3], {0, 1}, Interval(0.4, 1.0),
            slack_of=lambda j: 0.15 if j == 0 else 0.05,
        )
        violating = {v[0] for v in rep.slack_violations}
        assert violating == {1}


class TestExactHelpers:
    def test_masses(self, rng):
        datasets = [rng.uniform(size=(50, 1)) for _ in range(3)]
        rect = Rectangle([0.0], [0.5])
        masses = exact_ptile_masses(datasets, rect)
        for m, d in zip(masses, datasets):
            assert m == pytest.approx((d <= 0.5).mean())

    def test_scores(self, rng):
        datasets = [rng.normal(size=(30, 2)) for _ in range(3)]
        v = np.array([1.0, 0.0])
        scores = exact_pref_scores(datasets, v, 5)
        for s, d in zip(scores, datasets):
            assert s == pytest.approx(np.sort(d[:, 0])[-5])

    def test_scores_small_dataset(self, rng):
        scores = exact_pref_scores([rng.normal(size=(2, 1))], np.array([1.0]), 5)
        assert scores[0] == float("-inf")


class TestAuditPtileQuery:
    def test_end_to_end(self, rng):
        datasets = [rng.uniform(size=(200, 1)) for _ in range(8)]
        index = PtileRangeIndex(
            [ExactSynopsis(d) for d in datasets], eps=0.15, sample_size=16, rng=rng
        )
        rep = audit_ptile_query(
            datasets, index, Rectangle([0.0], [0.5]), Interval(0.3, 0.7)
        )
        assert rep.guarantees_hold
