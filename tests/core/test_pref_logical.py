"""Theorem D.4 tests: logical expressions over preference predicates."""

import numpy as np
import pytest

from repro.core.pref_logical import PrefLogicalIndex
from repro.errors import ConstructionError, QueryError
from repro.synopsis.exact import ExactSynopsis

K = 3
E1 = np.array([1.0, 0.0])
E2 = np.array([0.0, 1.0])


@pytest.fixture
def planted(rng):
    datasets = []
    for i in range(16):
        center = rng.uniform(-0.4, 0.4, size=2)
        datasets.append(np.clip(rng.normal(center, 0.15, size=(150, 2)), -0.95, 0.95))
    return datasets


@pytest.fixture
def index(planted):
    return PrefLogicalIndex([ExactSynopsis(p) for p in planted], k=K, eps=0.15)


def exact_score(pts, u, k=K):
    return float(np.sort(pts @ u)[len(pts) - k])


class TestConjunction:
    def test_recall(self, index, planted):
        a1, a2 = 0.1, 0.1
        truth = {
            i
            for i, p in enumerate(planted)
            if exact_score(p, E1) >= a1 and exact_score(p, E2) >= a2
        }
        got = index.query_conjunction([E1, E2], [a1, a2]).index_set
        assert truth <= got

    def test_precision(self, index, planted):
        a1, a2 = 0.2, 0.0
        slack = 2 * index.eps  # exact synopses: delta = 0
        for j in index.query_conjunction([E1, E2], [a1, a2]).indexes:
            assert exact_score(planted[j], E1) >= a1 - slack - 1e-9
            assert exact_score(planted[j], E2) >= a2 - slack - 1e-9

    def test_three_way_conjunction(self, index, planted):
        u3 = np.array([1.0, 1.0]) / np.sqrt(2)
        got = index.query_conjunction([E1, E2, u3], [0.0, 0.0, 0.0]).index_set
        truth = {
            i
            for i, p in enumerate(planted)
            if all(exact_score(p, u) >= 0.0 for u in (E1, E2, u3))
        }
        assert truth <= got

    def test_repeated_direction_takes_tightest(self, index):
        """Two predicates snapping to one net vector keep the max threshold."""
        loose = index.query_conjunction([E1], [0.0]).index_set
        combined = index.query_conjunction([E1, E1], [0.0, 0.4]).index_set
        tight = index.query_conjunction([E1], [0.4]).index_set
        assert combined == tight
        assert combined <= loose

    def test_trivial_thresholds_report_all(self, index):
        got = index.query_conjunction([E1, E2], [-10.0, -10.0])
        assert got.out_size == 16
        assert len(got.indexes) == len(set(got.indexes))


class TestDisjunction:
    def test_union_semantics(self, index, planted):
        got = index.query_disjunction([E1, E2], [0.3, 0.3]).index_set
        a = index.query_conjunction([E1], [0.3]).index_set
        b = index.query_conjunction([E2], [0.3]).index_set
        assert got == a | b

    def test_no_duplicates(self, index):
        res = index.query_disjunction([E1, E1], [-10.0, -10.0])
        assert len(res.indexes) == len(set(res.indexes))


class TestCaching:
    def test_trees_cached_per_subset(self, index):
        assert index.n_cached_trees == 0
        index.query_conjunction([E1, E2], [0.0, 0.0])
        n1 = index.n_cached_trees
        index.query_conjunction([E1, E2], [0.5, 0.5])  # same subset
        assert index.n_cached_trees == n1
        u3 = np.array([-1.0, 0.0])
        index.query_conjunction([E1, u3], [0.0, 0.0])  # new subset
        assert index.n_cached_trees == n1 + 1

    def test_precompute_all(self, planted):
        idx = PrefLogicalIndex(
            [ExactSynopsis(p) for p in planted[:4]],
            k=1,
            eps=0.45,
            precompute_all=True,
            max_subset_size=2,
        )
        n_dirs = idx.net.shape[0]
        expected = n_dirs + n_dirs * (n_dirs - 1) // 2
        assert idx.n_cached_trees == expected


class TestValidation:
    def test_bad_args(self, index):
        with pytest.raises(QueryError):
            index.query_conjunction([], [])
        with pytest.raises(QueryError):
            index.query_conjunction([E1], [0.0, 1.0])

    def test_bad_constructor(self, planted):
        with pytest.raises(ConstructionError):
            PrefLogicalIndex([], k=1)
        with pytest.raises(ConstructionError):
            PrefLogicalIndex([ExactSynopsis(planted[0])], k=0)

    def test_record_times(self, index):
        res = index.query_conjunction([E1], [-10.0], record_times=True)
        assert len(res.emit_times) == res.out_size
