"""Tests for predicates and logical expressions."""

import numpy as np
import pytest

from repro.core.framework import Dataset, Repository
from repro.core.measures import PercentileMeasure, PreferenceMeasure
from repro.core.predicates import And, Or, pred
from repro.geometry.interval import Interval
from repro.geometry.rectangle import Rectangle


@pytest.fixture
def half_mass_pred():
    return pred(PercentileMeasure(Rectangle([0.0], [0.5])), 0.5)


@pytest.fixture
def mixed_repo(rng):
    arrays = []
    for frac in (0.1, 0.4, 0.6, 0.9):
        n_in = int(100 * frac)
        arrays.append(
            np.vstack(
                [
                    rng.uniform(0.0, 0.5, size=(n_in, 1)),
                    rng.uniform(0.51, 1.0, size=(100 - n_in, 1)),
                ]
            )
        )
    return Repository.from_arrays(arrays)


class TestPredicate:
    def test_threshold_flag(self, half_mass_pred):
        assert half_mass_pred.is_threshold
        assert not pred(
            PercentileMeasure(Rectangle([0.0], [0.5])), 0.2, 0.4
        ).is_threshold

    def test_evaluate(self, half_mass_pred):
        ds_yes = Dataset(np.array([[0.1], [0.2], [0.8]]))
        ds_no = Dataset(np.array([[0.8], [0.9], [0.1]]))
        assert half_mass_pred.evaluate(ds_yes)
        assert not half_mass_pred.evaluate(ds_no)

    def test_leaves(self, half_mass_pred):
        assert list(half_mass_pred.leaves()) == [half_mass_pred]
        assert half_mass_pred.n_predicates == 1

    def test_pred_helper_builds_interval(self):
        p = pred(PercentileMeasure(Rectangle([0.0], [1.0])), 0.2, 0.6)
        assert p.theta == Interval(0.2, 0.6)


class TestCombinators:
    def test_and(self, mixed_repo):
        a = pred(PercentileMeasure(Rectangle([0.0], [0.5])), 0.3)
        b = pred(PercentileMeasure(Rectangle([0.0], [0.5])), 0.0, 0.7)
        expr = a & b
        assert isinstance(expr, And)
        truth = expr.ground_truth(mixed_repo)
        assert truth == {1, 2}

    def test_or(self, mixed_repo):
        a = pred(PercentileMeasure(Rectangle([0.0], [0.5])), 0.8)
        b = pred(PercentileMeasure(Rectangle([0.0], [0.5])), 0.0, 0.2)
        expr = a | b
        assert isinstance(expr, Or)
        assert expr.ground_truth(mixed_repo) == {0, 3}

    def test_nested(self, mixed_repo):
        a = pred(PercentileMeasure(Rectangle([0.0], [0.5])), 0.3)
        b = pred(PercentileMeasure(Rectangle([0.0], [0.5])), 0.8)
        c = pred(PercentileMeasure(Rectangle([0.0], [0.5])), 0.0, 0.2)
        expr = (a & b) | c
        assert expr.ground_truth(mixed_repo) == {0, 3}
        assert expr.n_predicates == 3

    def test_mixed_measure_classes(self, rng):
        pts = rng.uniform(size=(100, 2))
        repo = Repository.from_arrays([pts])
        expr = pred(PercentileMeasure(Rectangle([0, 0], [1, 1])), 0.9) & pred(
            PreferenceMeasure(np.array([1.0, 0.0]), 1), 0.0
        )
        assert expr.ground_truth(repo) == {0}

    def test_empty_children_rejected(self):
        with pytest.raises(ValueError):
            And([])
        with pytest.raises(ValueError):
            Or([])

    def test_ground_truth_empty(self, mixed_repo):
        p = pred(PercentileMeasure(Rectangle([0.0], [0.5])), 0.99)
        assert p.ground_truth(mixed_repo) == set()
