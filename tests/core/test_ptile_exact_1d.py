"""Theorem C.5 tests: the exact 1-d CPtile index equals brute force."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.ptile_exact_1d import ExactPtile1DIndex
from repro.errors import ConstructionError, QueryError
from repro.geometry.interval import Interval


def make_datasets(rng, n_datasets, max_points=60):
    out = []
    for _ in range(n_datasets):
        n = int(rng.integers(3, max_points))
        out.append(np.unique(rng.uniform(0, 1, size=n * 2))[:n])
    return out


class TestExactness:
    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 100_000),
        a=st.floats(0.05, 0.9),
        width=st.floats(0.0, 0.9),
    )
    def test_matches_brute_force(self, seed, a, width):
        rng = np.random.default_rng(seed)
        datasets = make_datasets(rng, 8)
        theta = Interval(a, min(1.0, a + width))
        index = ExactPtile1DIndex(datasets, theta)
        r_lo, r_hi = sorted(rng.uniform(-0.1, 1.1, size=2).tolist())
        res = index.query(r_lo, r_hi)
        assert set(res.indexes) == index.brute_force(r_lo, r_hi)
        assert len(res.indexes) == len(set(res.indexes))  # Lemma C.1

    def test_boundary_exactness(self):
        """Query edges exactly on data points: strictness must be exact."""
        data = np.array([1.0, 2.0, 3.0, 4.0])
        index = ExactPtile1DIndex([data], Interval(0.5, 0.75))
        # [1, 3] contains 3/4 -> inside theta.
        assert index.query(1.0, 3.0).indexes == [0]
        # [1, 4] contains 4/4 = 1.0 -> outside theta.
        assert index.query(1.0, 4.0).indexes == []
        # [2, 3] contains 2/4 = 0.5 -> inside.
        assert index.query(2.0, 3.0).indexes == [0]
        # [2.5, 3.5] contains 1/4 -> outside.
        assert index.query(2.5, 3.5).indexes == []

    def test_one_sided_theta(self):
        data = np.array([1.0, 2.0, 3.0, 4.0])
        index = ExactPtile1DIndex([data], Interval(0.5, 1.0))
        assert index.query(0.0, 10.0).indexes == [0]

    def test_never_qualifying_dataset(self):
        """A dataset too small to meet the count window is skipped."""
        index = ExactPtile1DIndex(
            [np.array([1.0]), np.array([1.0, 2.0, 3.0, 4.0])],
            Interval(0.3, 0.4),  # needs count in [2, 1] for n=4... empty too
        )
        # n=1: ceil(0.3)=1 > floor(0.4)=0 -> never; n=4: ceil(1.2)=2 > floor(1.6)=1.
        assert index.query(0.0, 10.0).indexes == []

    def test_empty_query_interval(self):
        index = ExactPtile1DIndex([np.array([1.0, 2.0])], Interval(0.4, 1.0))
        assert index.query(5.0, 6.0).indexes == []


class TestEngines:
    def test_rangetree_matches_kd(self, rng):
        datasets = make_datasets(rng, 6)
        theta = Interval(0.25, 0.75)
        kd = ExactPtile1DIndex(datasets, theta, engine="kd")
        rt = ExactPtile1DIndex(datasets, theta, engine="rangetree")
        for _ in range(10):
            r_lo, r_hi = sorted(rng.uniform(0, 1, size=2).tolist())
            assert set(kd.query(r_lo, r_hi).indexes) == set(
                rt.query(r_lo, r_hi).indexes
            )

    def test_unknown_engine(self):
        with pytest.raises(ConstructionError):
            ExactPtile1DIndex([np.array([1.0])], Interval(0.5, 1.0), engine="x")


class TestValidation:
    def test_rejects_zero_lower_threshold(self):
        with pytest.raises(ConstructionError):
            ExactPtile1DIndex([np.array([1.0])], Interval(0.0, 0.5))

    def test_rejects_duplicates(self):
        with pytest.raises(ConstructionError):
            ExactPtile1DIndex([np.array([1.0, 1.0])], Interval(0.5, 1.0))

    def test_rejects_empty_dataset(self):
        with pytest.raises(ConstructionError):
            ExactPtile1DIndex([np.array([])], Interval(0.5, 1.0))

    def test_rejects_inverted_query(self):
        index = ExactPtile1DIndex([np.array([1.0])], Interval(0.5, 1.0))
        with pytest.raises(QueryError):
            index.query(2.0, 1.0)

    def test_accepts_column_vectors(self):
        index = ExactPtile1DIndex([np.array([[1.0], [2.0]])], Interval(0.5, 1.0))
        assert index.query(0.5, 1.5).indexes == [0]

    def test_metadata(self, rng):
        datasets = make_datasets(rng, 5)
        index = ExactPtile1DIndex(datasets, Interval(0.2, 0.8))
        assert index.n_datasets == 5
        assert index.total_points == sum(len(d) for d in datasets)
        assert index.n_mapped_points > 0

    def test_record_times(self, rng):
        datasets = make_datasets(rng, 5)
        index = ExactPtile1DIndex(datasets, Interval(0.1, 1.0))
        res = index.query(0.0, 1.0, record_times=True)
        assert len(res.emit_times) == res.out_size
