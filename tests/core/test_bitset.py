"""Unit tests for the packed ``DatasetBitmap`` warm-path representation."""

import numpy as np
import pytest

from repro.core.bitset import DatasetBitmap, bitmap_from_wire


class TestConstruction:
    def test_from_indices_roundtrip(self):
        bm = DatasetBitmap.from_indices([5, 0, 63, 64, 199], 200)
        assert bm.to_list() == [0, 5, 63, 64, 199]
        assert bm.count() == 5

    def test_duplicates_collapse(self):
        bm = DatasetBitmap.from_indices([3, 3, 3], 10)
        assert bm.to_list() == [3] and bm.count() == 1

    def test_accepts_sets_and_arrays(self):
        assert DatasetBitmap.from_indices({1, 2}, 8).to_list() == [1, 2]
        assert DatasetBitmap.from_indices(np.array([7]), 8).to_list() == [7]

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            DatasetBitmap.from_indices([8], 8)
        with pytest.raises(ValueError):
            DatasetBitmap.from_indices([-1], 8)

    def test_zeros_and_full(self):
        assert DatasetBitmap.zeros(100).count() == 0
        full = DatasetBitmap.full(100)
        assert full.count() == 100
        assert full.to_list() == list(range(100))
        # Word-boundary universe: no tail mask needed, still exact.
        assert DatasetBitmap.full(128).count() == 128

    def test_empty_universe(self):
        bm = DatasetBitmap.zeros(0)
        assert bm.to_list() == [] and bm.count() == 0 and not bm.any()

    def test_word_count_validation(self):
        with pytest.raises(ValueError):
            DatasetBitmap(np.zeros(3, dtype=np.uint64), 64)


class TestAlgebra:
    A = {1, 3, 64, 100}
    B = {3, 64, 101}

    def _ab(self, na=128, nb=128):
        return (
            DatasetBitmap.from_indices(self.A, na),
            DatasetBitmap.from_indices(self.B, nb),
        )

    def test_and_or_andnot(self):
        a, b = self._ab()
        assert (a & b).to_set() == self.A & self.B
        assert (a | b).to_set() == self.A | self.B
        assert a.andnot(b).to_set() == self.A - self.B

    def test_mixed_universe_sizes_align(self):
        a, b = self._ab(na=101, nb=400)
        assert (a | b).to_set() == self.A | self.B
        assert (a & b).to_set() == self.A & self.B
        assert (a | b).nbits == 400
        assert a.andnot(b).to_set() == self.A - self.B

    def test_operands_not_mutated(self):
        a, b = self._ab()
        _ = a & b, a | b, a.andnot(b)
        assert a.to_set() == self.A and b.to_set() == self.B

    def test_equality_is_set_equality_across_sizes(self):
        assert DatasetBitmap.from_indices([1], 64) == DatasetBitmap.from_indices(
            [1], 500
        )
        assert DatasetBitmap.from_indices([1], 64) != DatasetBitmap.from_indices(
            [2], 64
        )

    def test_hash_consistent_with_eq(self):
        x = DatasetBitmap.from_indices([7, 70], 80)
        y = DatasetBitmap.from_indices([7, 70], 640)
        assert hash(x) == hash(y) and x == y

    def test_contains(self):
        a, _ = self._ab()
        assert 64 in a and 2 not in a and 10_000 not in a and -1 not in a

    def test_any(self):
        assert not DatasetBitmap.zeros(100).any()
        assert DatasetBitmap.from_indices([99], 100).any()


class TestUniverseSurgery:
    def test_shift_into_crosses_word_boundaries(self):
        bm = DatasetBitmap.from_indices([0, 1, 63], 64)
        for off in (0, 1, 63, 64, 65, 130):
            shifted = bm.shift_into(off, 64 + off)
            assert shifted.to_list() == [0 + off, 1 + off, 63 + off]

    def test_shift_into_overflow_rejected(self):
        bm = DatasetBitmap.from_indices([63], 64)
        with pytest.raises(ValueError):
            bm.shift_into(10, 64)

    def test_remap_contiguous_fast_path(self):
        bm = DatasetBitmap.from_indices([0, 2], 4)
        assert bm.remap([10, 11, 12, 13], 14).to_list() == [10, 12]

    def test_remap_scatter(self):
        bm = DatasetBitmap.from_indices([0, 2], 4)
        assert bm.remap([9, 0, 90, 1], 100).to_list() == [9, 90]

    def test_remap_too_short_rejected(self):
        with pytest.raises(ValueError):
            DatasetBitmap.from_indices([2], 3).remap([0, 1], 10)

    def test_resize_grow_and_shrink(self):
        bm = DatasetBitmap.from_indices([5], 10)
        assert bm.resize(1000).to_list() == [5]
        assert bm.resize(1000).resize(6).to_list() == [5]

    def test_resize_shrink_rejects_stray_members(self):
        # Shrinks must validate by logical size, not word count: a member
        # above the new nbits but inside the same 64-bit word would
        # otherwise survive past the tail and corrupt count/eq.
        bm = DatasetBitmap.from_indices([68], 70)
        with pytest.raises(ValueError):
            bm.resize(66)  # same word count as 70 bits
        with pytest.raises(ValueError):
            DatasetBitmap.from_indices([900], 1000).resize(66)


class TestWire:
    def test_roundtrip(self):
        bm = DatasetBitmap.from_indices([0, 63, 64, 300], 321)
        wire = bm.to_wire()
        assert wire["encoding"] == "u64le+b64" and wire["n_bits"] == 321
        assert bitmap_from_wire(wire) == bm

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            bitmap_from_wire({"encoding": "nope"})
        wire = DatasetBitmap.from_indices([1], 100).to_wire()
        wire["n_bits"] = 10_000
        with pytest.raises(ValueError):
            bitmap_from_wire(wire)

    def test_rejects_stray_tail_bits(self):
        import base64

        import numpy as np

        # A full 0xFF byte claims bits 4..7 in a 4-bit universe; accepting
        # it would violate the zero-tail invariant (count != |to_list()|).
        payload = {
            "encoding": "u64le+b64",
            "n_bits": 4,
            "words": base64.b64encode(
                np.array([0xFF], dtype="<u8").tobytes()
            ).decode("ascii"),
        }
        with pytest.raises(ValueError):
            bitmap_from_wire(payload)

    def test_wire_is_compact(self):
        bm = DatasetBitmap.full(64 * 100)
        # 100 words -> 800 bytes -> ~1068 base64 chars, vs 6400 indexes.
        assert len(bm.to_wire()["words"]) < 1100
