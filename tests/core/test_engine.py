"""End-to-end tests for DatasetSearchEngine."""

import numpy as np
import pytest

from repro.core.engine import DatasetSearchEngine
from repro.core.framework import Repository
from repro.core.measures import PercentileMeasure, PreferenceMeasure
from repro.core.predicates import And, Or, pred
from repro.errors import ConstructionError, QueryError
from repro.geometry.rectangle import Rectangle
from repro.synopsis.exact import ExactSynopsis
from repro.synopsis.sample import EpsilonSampleSynopsis

REGION = Rectangle([0.0, 0.0], [0.5, 0.5])


@pytest.fixture
def repo(rng):
    arrays = []
    for i in range(10):
        center = rng.uniform(0.2, 0.8, size=2)
        arrays.append(np.clip(rng.normal(center, 0.15, size=(250, 2)), 0.0, 1.0))
    return Repository.from_arrays(arrays)


@pytest.fixture
def engine(repo, rng):
    return DatasetSearchEngine(repository=repo, eps=0.15, sample_size=10, rng=rng)


class TestRouting:
    def test_percentile_leaf(self, engine):
        expr = pred(PercentileMeasure(REGION), 0.3)
        q = engine.evaluate_quality(expr)
        assert q["recall"] == 1.0

    def test_percentile_range_leaf(self, engine):
        expr = pred(PercentileMeasure(REGION), 0.2, 0.6)
        assert engine.evaluate_quality(expr)["recall"] == 1.0

    def test_preference_leaf(self, engine):
        expr = pred(PreferenceMeasure(np.array([1.0, 1.0]), 3), 0.8)
        assert engine.evaluate_quality(expr)["recall"] == 1.0

    def test_mixed_conjunction(self, engine):
        expr = And(
            [
                pred(PercentileMeasure(REGION), 0.2),
                pred(PreferenceMeasure(np.array([1.0, 0.0]), 5), 0.3),
            ]
        )
        assert engine.evaluate_quality(expr)["recall"] == 1.0

    def test_mixed_disjunction(self, engine):
        expr = Or(
            [
                pred(PercentileMeasure(REGION), 0.9),
                pred(PreferenceMeasure(np.array([0.0, 1.0]), 3), 0.9),
            ]
        )
        assert engine.evaluate_quality(expr)["recall"] == 1.0

    def test_two_sided_preference_rejected(self, engine):
        expr = pred(PreferenceMeasure(np.array([1.0, 0.0]), 1), 0.2, 0.4)
        with pytest.raises(QueryError):
            engine.search(expr)


class TestConstructionModes:
    def test_requires_some_input(self):
        with pytest.raises(ConstructionError):
            DatasetSearchEngine()

    def test_federated_without_repository(self, repo, rng):
        syns = [
            EpsilonSampleSynopsis.from_points(ds.points, size=100, rng=rng)
            for ds in repo
        ]
        eng = DatasetSearchEngine(synopses=syns, eps=0.15, sample_size=10, rng=rng)
        res = eng.search(pred(PercentileMeasure(REGION), 0.3))
        assert res.out_size >= 0  # runs fine
        with pytest.raises(QueryError):
            eng.ground_truth(pred(PercentileMeasure(REGION), 0.3))

    def test_synopsis_count_mismatch(self, repo, rng):
        with pytest.raises(ConstructionError):
            DatasetSearchEngine(
                synopses=[ExactSynopsis(repo[0].points)], repository=repo
            )

    def test_lazy_indexes(self, engine):
        assert engine._ptile is None and not engine._pref
        engine.search(pred(PercentileMeasure(REGION), 0.5))
        assert engine._ptile is not None and not engine._pref
        engine.search(pred(PreferenceMeasure(np.array([1.0, 0.0]), 2), 0.0))
        assert 2 in engine._pref

    def test_pref_index_cached_per_k(self, engine):
        a = engine.pref_index(3)
        assert engine.pref_index(3) is a
        assert engine.pref_index(4) is not a

    def test_n_datasets(self, engine):
        assert engine.n_datasets == 10


class TestQuality:
    def test_quality_fields(self, engine):
        q = engine.evaluate_quality(pred(PercentileMeasure(REGION), 0.4))
        assert set(q) == {
            "truth_size",
            "reported_size",
            "recall",
            "precision",
            "false_positives",
            "missed",
        }
        assert q["missed"] == []

    def test_record_times(self, engine):
        res = engine.search(pred(PercentileMeasure(REGION), 0.1), record_times=True)
        assert res.start_time is not None and res.end_time is not None
