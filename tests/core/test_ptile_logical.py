"""Theorem C.8 tests: logical expressions over range-predicates."""

import numpy as np
import pytest

from repro.core.framework import Dataset
from repro.core.measures import PercentileMeasure, PreferenceMeasure
from repro.core.predicates import And, Or, pred
from repro.core.ptile_logical import PtileLogicalIndex
from repro.errors import ConstructionError, QueryError
from repro.geometry.interval import Interval
from repro.geometry.rectangle import Rectangle
from repro.synopsis.exact import ExactSynopsis

LEFT = Rectangle([0.0], [0.5])
RIGHT = Rectangle([0.5], [1.0])


@pytest.fixture
def planted(rng):
    """Datasets with controlled mass split between [0,.5] and (.5,1]."""
    datasets = []
    for i in range(10):
        frac = (i + 1) / 11
        n_in = int(300 * frac)
        datasets.append(
            np.vstack(
                [
                    rng.uniform(0.0, 0.5, size=(n_in, 1)),
                    rng.uniform(0.5001, 1.0, size=(300 - n_in, 1)),
                ]
            )
        )
    return datasets


@pytest.fixture
def index(planted, rng):
    return PtileLogicalIndex(
        [ExactSynopsis(p) for p in planted], eps=0.15, sample_size=12, rng=rng
    )


def conj(a1, b1, a2, b2):
    return And(
        [
            pred(PercentileMeasure(LEFT), a1, b1),
            pred(PercentileMeasure(RIGHT), a2, b2),
        ]
    )


class TestComposeStrategy:
    def test_conjunction_recall(self, index, planted):
        expr = conj(0.3, 0.8, 0.2, 0.7)
        truth = {i for i, p in enumerate(planted) if expr.evaluate(Dataset(p))}
        assert truth <= index.query(expr).index_set

    def test_conjunction_per_leaf_precision(self, index, planted):
        expr = conj(0.4, 0.7, 0.3, 0.6)
        slack = 2 * index.eps_effective
        for j in index.query(expr).indexes:
            m_left = LEFT.count_inside(planted[j]) / 300
            m_right = RIGHT.count_inside(planted[j]) / 300
            assert 0.4 - slack - 1e-9 <= m_left <= 0.7 + slack + 1e-9
            assert 0.3 - slack - 1e-9 <= m_right <= 0.6 + slack + 1e-9

    def test_disjunction_recall(self, index, planted):
        expr = Or(
            [
                pred(PercentileMeasure(LEFT), 0.8),
                pred(PercentileMeasure(RIGHT), 0.8),
            ]
        )
        truth = {i for i, p in enumerate(planted) if expr.evaluate(Dataset(p))}
        assert truth <= index.query(expr).index_set

    def test_nested_expression(self, index, planted):
        expr = Or(
            [
                conj(0.7, 1.0, 0.0, 0.3),
                conj(0.0, 0.3, 0.7, 1.0),
            ]
        )
        truth = {i for i, p in enumerate(planted) if expr.evaluate(Dataset(p))}
        assert truth <= index.query(expr).index_set

    def test_no_duplicates(self, index):
        expr = Or(
            [pred(PercentileMeasure(LEFT), 0.0), pred(PercentileMeasure(RIGHT), 0.0)]
        )
        res = index.query(expr)
        assert len(res.indexes) == len(set(res.indexes))

    def test_preference_leaf_rejected(self, index):
        expr = pred(PreferenceMeasure(np.array([1.0]), 1), 0.5)
        with pytest.raises(QueryError):
            index.query(expr)


class TestTensorStrategy:
    def test_tensor_matches_compose_on_conjunctions(self, planted, rng):
        """Component independence: the m-fold tensor answer equals the
        intersection of per-predicate answers over the same coresets."""
        idx = PtileLogicalIndex(
            [ExactSynopsis(p) for p in planted],
            eps=0.2,
            sample_size=6,
            strategy="tensor",
            rng=rng,
        )
        for bounds in [(0.2, 0.8, 0.2, 0.8), (0.4, 0.6, 0.1, 0.9), (0.0, 0.3, 0.6, 1.0)]:
            expr = conj(*bounds)
            tensor_ans = idx.query(expr).index_set
            compose_ans = idx._eval(expr)
            assert tensor_ans == compose_ans

    def test_tensor_recall(self, planted, rng):
        idx = PtileLogicalIndex(
            [ExactSynopsis(p) for p in planted],
            eps=0.2,
            sample_size=6,
            strategy="tensor",
            rng=rng,
        )
        expr = conj(0.3, 0.9, 0.1, 0.7)
        truth = {i for i, p in enumerate(planted) if expr.evaluate(Dataset(p))}
        assert truth <= idx.query(expr).index_set

    def test_tensor_no_duplicates(self, planted, rng):
        idx = PtileLogicalIndex(
            [ExactSynopsis(p) for p in planted],
            eps=0.25,
            sample_size=5,
            strategy="tensor",
            rng=rng,
        )
        res = idx.query_conjunction_tensor(
            [LEFT, RIGHT], [Interval(0.0, 1.0), Interval(0.0, 1.0)]
        )
        assert len(res.indexes) == len(set(res.indexes))
        assert res.out_size == 10

    def test_tensor_restores_structure(self, planted, rng):
        idx = PtileLogicalIndex(
            [ExactSynopsis(p) for p in planted],
            eps=0.25,
            sample_size=5,
            strategy="tensor",
            rng=rng,
        )
        args = ([LEFT, RIGHT], [Interval(0.2, 0.8), Interval(0.2, 0.8)])
        assert (
            idx.query_conjunction_tensor(*args).index_set
            == idx.query_conjunction_tensor(*args).index_set
        )

    def test_tensor_size_guard(self, planted, rng):
        idx = PtileLogicalIndex(
            [ExactSynopsis(p) for p in planted],
            sample_size=30,
            strategy="tensor",
            rng=rng,
        )
        with pytest.raises(ConstructionError):
            idx.query_conjunction_tensor(
                [LEFT, RIGHT, LEFT], [Interval(0, 1)] * 3
            )

    def test_falls_back_to_compose_for_disjunction(self, planted, rng):
        idx = PtileLogicalIndex(
            [ExactSynopsis(p) for p in planted],
            eps=0.25,
            sample_size=5,
            strategy="tensor",
            rng=rng,
        )
        expr = Or(
            [pred(PercentileMeasure(LEFT), 0.0), pred(PercentileMeasure(RIGHT), 0.0)]
        )
        assert idx.query(expr).out_size == 10


class TestValidation:
    def test_unknown_strategy(self, planted, rng):
        with pytest.raises(ConstructionError):
            PtileLogicalIndex(
                [ExactSynopsis(planted[0])], strategy="magic", rng=rng
            )

    def test_mismatched_tensor_args(self, index):
        with pytest.raises(QueryError):
            index.query_conjunction_tensor([LEFT], [])

    def test_record_times(self, index):
        expr = pred(PercentileMeasure(LEFT), 0.1)
        res = index.query(expr, record_times=True)
        assert res.start_time is not None and res.end_time is not None
