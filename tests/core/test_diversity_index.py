"""Tests for the Section 6 diversity extension index."""

import numpy as np
import pytest

from repro.core.diversity_index import DiversityIndex, diameter
from repro.errors import ConstructionError, QueryError
from repro.geometry.rectangle import Rectangle
from repro.synopsis.cover import CoverSynopsis

RADIUS = 0.04
WHOLE = Rectangle([0.0, 0.0], [1.0, 1.0])


@pytest.fixture
def planted(rng):
    """Datasets with controlled spread: from tight blobs to full coverage."""
    datasets = []
    for i in range(10):
        half_width = 0.03 + 0.05 * i
        center = np.full(2, 0.5)
        pts = rng.uniform(center - half_width, center + half_width, size=(400, 2))
        datasets.append(np.clip(pts, 0.0, 1.0))
    return datasets


@pytest.fixture
def index(planted):
    return DiversityIndex([CoverSynopsis(p, RADIUS) for p in planted])


class TestDiameter:
    def test_trivial_sets(self):
        assert diameter(np.empty((0, 2))) == 0.0
        assert diameter(np.array([[1.0, 1.0]])) == 0.0

    def test_two_points(self):
        assert diameter(np.array([[0.0, 0.0], [3.0, 4.0]])) == pytest.approx(5.0)

    def test_matches_bruteforce(self, rng):
        pts = rng.uniform(size=(40, 3))
        best = max(
            float(np.linalg.norm(a - b)) for a in pts for b in pts
        )
        assert diameter(pts) == pytest.approx(best)


class TestGuarantees:
    @pytest.mark.parametrize("tau", [0.1, 0.4, 0.8])
    def test_recall_whole_space(self, index, planted, tau):
        truth = {i for i, p in enumerate(planted) if diameter(p) >= tau}
        assert truth <= index.query(WHOLE, tau).index_set

    @pytest.mark.parametrize("tau", [0.3, 0.6])
    def test_precision_additive(self, index, planted, tau):
        """Reported j has diam(P_j ∩ R^{+2r}) >= tau - 4r."""
        for j in index.query(WHOLE, tau).indexes:
            expanded = Rectangle(WHOLE.lo - 2 * RADIUS, WHOLE.hi + 2 * RADIUS)
            pts = planted[j][expanded.contains_points(planted[j])]
            assert diameter(pts) >= tau - 4 * RADIUS - 1e-9

    def test_sub_rectangle_queries(self, index, planted, rng):
        rect = Rectangle([0.4, 0.4], [0.6, 0.6])
        tau = 0.15
        truth = {
            i
            for i, p in enumerate(planted)
            if diameter(p[rect.contains_points(p)]) >= tau
        }
        assert truth <= index.query(rect, tau).index_set

    def test_empty_region(self, index):
        rect = Rectangle([5.0, 5.0], [6.0, 6.0])
        assert index.query(rect, 0.1).index_set == set()

    def test_candidates_are_output_sensitive(self, index):
        """A region only some datasets touch yields fewer candidates than N."""
        rect = Rectangle([0.05, 0.05], [0.15, 0.15])  # only the widest blobs
        res = index.query(rect, 0.0)
        assert res.stats["candidates"] < index.n_datasets

    def test_estimate_sandwich(self, index, planted):
        rect = Rectangle([0.3, 0.3], [0.7, 0.7])
        for key, pts in enumerate(planted):
            exact = diameter(pts[rect.contains_points(pts)])
            est = index.estimate(key, rect)
            assert est >= exact - 2 * RADIUS - 1e-9


class TestValidation:
    def test_empty(self):
        with pytest.raises(ConstructionError):
            DiversityIndex([])

    def test_bad_query(self, index):
        with pytest.raises(QueryError):
            index.query(Rectangle([0.0], [1.0]), 0.1)
        with pytest.raises(QueryError):
            index.query(WHOLE, -0.5)

    def test_record_times(self, index):
        res = index.query(WHOLE, 0.0, record_times=True)
        assert len(res.emit_times) == res.out_size == 10
