"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_demo_ptile_defaults(self):
        args = build_parser().parse_args(["demo-ptile"])
        assert args.n == 40 and args.dim == 2 and args.theta == (0.2, 0.6)

    def test_demo_pref_args(self):
        args = build_parser().parse_args(["demo-pref", "--k", "3", "--tau", "0.5"])
        assert args.k == 3 and args.tau == 0.5

    def test_unknown_family_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["lake-stats", "--family", "fractal"])


class TestCommands:
    def test_demo_ptile_runs_and_reports_recall(self, capsys):
        code = main(
            ["demo-ptile", "--n", "10", "--dim", "1", "--median-size", "150",
             "--seed", "3"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "recall" in out and "Ptile demo" in out

    def test_demo_pref_runs(self, capsys):
        code = main(
            ["demo-pref", "--n", "8", "--dim", "2", "--median-size", "150",
             "--k", "3", "--tau", "0.5", "--eps", "0.2", "--seed", "3"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Pref demo" in out and "net directions" in out

    def test_lake_stats(self, capsys):
        code = main(["lake-stats", "--n", "4", "--dim", "2", "--median-size", "64"])
        out = capsys.readouterr().out
        assert code == 0
        assert "synthetic lake" in out
        assert out.count("\n") >= 7  # header + 4 rows + separators
