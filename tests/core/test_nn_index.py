"""Tests for the Section 6 nearest-neighbor extension index."""

import numpy as np
import pytest

from repro.core.nn_index import NearestNeighborIndex
from repro.errors import ConstructionError, QueryError
from repro.synopsis.cover import CoverSynopsis

RADIUS = 0.05


@pytest.fixture
def planted(rng):
    """Datasets clustered at increasing distance from the origin corner."""
    datasets = []
    for i in range(12):
        center = np.full(2, 0.1 + i * 0.07)
        datasets.append(
            np.clip(rng.normal(center, 0.02, size=(300, 2)), 0.0, 1.0)
        )
    return datasets


@pytest.fixture
def index(planted):
    return NearestNeighborIndex([CoverSynopsis(p, RADIUS) for p in planted])


def exact_dist(pts, q):
    return float(np.linalg.norm(pts - q, axis=1).min())


class TestGuarantees:
    @pytest.mark.parametrize("tau", [0.05, 0.15, 0.3])
    def test_recall(self, index, planted, tau, rng):
        for _ in range(5):
            q = rng.uniform(0.0, 1.0, size=2)
            truth = {i for i, p in enumerate(planted) if exact_dist(p, q) <= tau}
            assert truth <= index.query(q, tau).index_set

    @pytest.mark.parametrize("tau", [0.1, 0.25])
    def test_precision_additive_2r(self, index, planted, tau, rng):
        for _ in range(5):
            q = rng.uniform(0.0, 1.0, size=2)
            for j in index.query(q, tau).indexes:
                assert exact_dist(planted[j], q) <= tau + 2 * RADIUS + 1e-9

    def test_no_duplicates(self, index, rng):
        q = rng.uniform(size=2)
        res = index.query(q, 2.0)
        assert len(res.indexes) == len(res.index_set) == 12

    def test_zero_tau(self, index, planted):
        q = planted[3][0]  # an actual data point; may or may not be a cover pt
        res = index.query(q, 0.0)
        assert 3 in res.index_set  # dist 0 <= 0 + r slack

    def test_record_times(self, index, rng):
        res = index.query(rng.uniform(size=2), 0.5, record_times=True)
        assert len(res.emit_times) == res.out_size


class TestDynamics:
    def test_insert_and_delete(self, index, rng):
        far = np.full((50, 2), 0.95) + rng.uniform(-0.01, 0.01, (50, 2))
        key = index.insert_cover(CoverSynopsis(far, RADIUS))
        q = np.array([0.95, 0.95])
        assert key in index.query(q, 0.05).index_set
        index.delete_cover(key)
        assert key not in index.query(q, 0.05).index_set
        with pytest.raises(KeyError):
            index.delete_cover(key)


class TestValidation:
    def test_empty(self):
        with pytest.raises(ConstructionError):
            NearestNeighborIndex([])

    def test_dim_mismatch(self, rng):
        with pytest.raises(ConstructionError):
            NearestNeighborIndex(
                [
                    CoverSynopsis(rng.uniform(size=(5, 1)), 0.1),
                    CoverSynopsis(rng.uniform(size=(5, 2)), 0.1),
                ]
            )

    def test_bad_query(self, index):
        with pytest.raises(QueryError):
            index.query(np.zeros(3), 0.1)
        with pytest.raises(QueryError):
            index.query(np.zeros(2), -1.0)

    def test_metadata(self, index):
        assert index.n_datasets == 12
        assert index.max_radius == RADIUS
        assert index.radius_of(0) == RADIUS
