"""Driver-level tests: suppressions, baselines, reporters, CLI, registry."""

from __future__ import annotations

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis import lint_paths, lint_source, render_json, render_text
from repro.analysis.registry import all_rules
from repro.analysis.runner import main

REPO_ROOT = Path(__file__).resolve().parents[2]

VIOLATION = textwrap.dedent(
    """
    import threading

    class Counter:
        def __init__(self) -> None:
            self._lock = threading.Lock()
            self.count = 0  # guarded-by: _lock

        def bump(self) -> None:
            self.count += 1
    """
)


# -- registry -----------------------------------------------------------


def test_all_six_rules_registered():
    rules = all_rules()
    assert set(rules) >= {
        "guarded-by",
        "hot-path",
        "zero-cost",
        "backend-protocol",
        "pool-capture",
        "wire-schema",
    }


def test_unknown_rule_raises_with_known_names():
    with pytest.raises(KeyError, match="guarded-by"):
        all_rules(["no-such-rule"])


# -- suppressions -------------------------------------------------------


def test_suppression_by_rule_name():
    src = VIOLATION.replace(
        "self.count += 1", "self.count += 1  # lint: ignore[guarded-by]"
    )
    assert lint_source(src) == []


def test_bare_suppression_silences_all_rules():
    src = VIOLATION.replace("self.count += 1", "self.count += 1  # lint: ignore")
    assert lint_source(src) == []


def test_suppression_for_other_rule_does_not_apply():
    src = VIOLATION.replace(
        "self.count += 1", "self.count += 1  # lint: ignore[hot-path]"
    )
    assert len(lint_source(src)) == 1


# -- reporters ----------------------------------------------------------


def test_render_text_format():
    findings = lint_source(VIOLATION, path="counter.py")
    text = render_text(findings)
    assert "counter.py:10: error[guarded-by]" in text
    assert text.endswith("1 finding")
    assert render_text([]).endswith("0 findings")


def test_render_json_roundtrip():
    findings = lint_source(VIOLATION, path="counter.py")
    data = json.loads(render_json(findings))
    assert data[0]["rule"] == "guarded-by"
    assert data[0]["file"] == "counter.py"
    assert data[0]["line"] == 10


def test_parse_error_becomes_finding():
    (finding,) = lint_source("def broken(:\n", path="bad.py")
    assert finding.rule == "parse-error"


# -- baseline -----------------------------------------------------------


def test_baseline_suppresses_recorded_findings(tmp_path):
    mod = tmp_path / "counter.py"
    mod.write_text(VIOLATION)
    baseline = tmp_path / "baseline.json"

    assert main([str(mod), "--write-baseline", str(baseline)]) == 0
    assert len(json.loads(baseline.read_text())) == 1
    # Recorded findings are ignored; exit goes clean.
    assert main([str(mod), "--baseline", str(baseline)]) == 0
    # A new violation still fails even with the baseline applied.
    mod.write_text(VIOLATION + "\n    def poke(self) -> None:\n        self.count -= 1\n")
    assert main([str(mod), "--baseline", str(baseline)]) == 1


def test_baseline_matches_despite_line_drift(tmp_path):
    mod = tmp_path / "counter.py"
    mod.write_text(VIOLATION)
    baseline = tmp_path / "baseline.json"
    main([str(mod), "--write-baseline", str(baseline)])
    mod.write_text("# a new leading comment shifts every line\n" + VIOLATION)
    assert main([str(mod), "--baseline", str(baseline)]) == 0


# -- CLI ----------------------------------------------------------------


def test_cli_exits_zero_on_current_tree():
    # The acceptance bar: the shipped source tree lints clean.
    assert main([str(REPO_ROOT / "src")]) == 0


def test_cli_exits_nonzero_on_seeded_violation(tmp_path):
    mod = tmp_path / "counter.py"
    mod.write_text(VIOLATION)
    assert main([str(mod)]) == 1


def test_cli_rule_subset(tmp_path):
    mod = tmp_path / "counter.py"
    mod.write_text(VIOLATION)
    assert main([str(mod), "--rules", "hot-path"]) == 0
    assert main([str(mod), "--rules", "guarded-by"]) == 1
    assert main([str(mod), "--rules", "no-such-rule"]) == 2


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "guarded-by:" in out and "wire-schema:" in out


def test_cli_json_format(tmp_path, capsys):
    mod = tmp_path / "counter.py"
    mod.write_text(VIOLATION)
    assert main([str(mod), "--format", "json"]) == 1
    data = json.loads(capsys.readouterr().out)
    assert data[0]["rule"] == "guarded-by"


def test_repro_cli_lint_subcommand(tmp_path):
    from repro.cli import main as cli_main

    mod = tmp_path / "counter.py"
    mod.write_text(VIOLATION)
    assert cli_main(["lint", str(mod)]) == 1
    assert cli_main(["lint", str(REPO_ROOT / "src" / "repro" / "analysis")]) == 0


def test_python_dash_m_entry_point(tmp_path):
    mod = tmp_path / "counter.py"
    mod.write_text(VIOLATION)
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", str(mod)],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 1
    assert "guarded-by" in proc.stdout


def test_lint_paths_walks_directories(tmp_path):
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "a.py").write_text(VIOLATION)
    (tmp_path / "pkg" / "b.py").write_text("x = 1\n")
    findings = lint_paths([str(tmp_path)])
    assert len(findings) == 1
    assert findings[0].file.endswith("a.py")
