"""Paired flag/pass fixtures for every lint rule.

Each rule gets at least one fixture that must FLAG (the seeded violation)
and one that must PASS (the idiomatic repo shape), so a rule that silently
stops firing — or starts firing on clean code — fails here.
"""

from __future__ import annotations

import textwrap

from repro.analysis import lint_source


def run(source: str, rule: str):
    return lint_source(textwrap.dedent(source), path="fix.py", rules=[rule])


# -- guarded-by ---------------------------------------------------------


GUARDED_CLASS = """
    import threading

    class Counter:
        def __init__(self) -> None:
            self._lock = threading.Lock()
            self.count = 0  # guarded-by: _lock

        def bump(self) -> None:
            {body}
"""


def test_guarded_by_flags_unlocked_write():
    src = GUARDED_CLASS.format(body="self.count += 1")
    findings = run(src, "guarded-by")
    assert len(findings) == 1
    f = findings[0]
    assert f.rule == "guarded-by"
    assert "Counter.count" in f.message
    assert "bump()" in f.message
    assert "_lock" in f.message


def test_guarded_by_flags_unlocked_read():
    src = GUARDED_CLASS.format(body="return self.count")
    (finding,) = run(src, "guarded-by")
    assert "read" in finding.message


def test_guarded_by_passes_locked_access():
    src = GUARDED_CLASS.format(
        body="with self._lock:\n                self.count += 1"
    )
    assert run(src, "guarded-by") == []


def test_guarded_by_wrong_lock_still_flags():
    src = """
    import threading

    class Counter:
        def __init__(self) -> None:
            self._lock = threading.Lock()
            self._other = threading.Lock()
            self.count = 0  # guarded-by: _lock

        def bump(self) -> None:
            with self._other:
                self.count += 1
    """
    assert len(run(src, "guarded-by")) == 1


def test_guarded_by_exempts_init_and_locked_suffix():
    src = """
    import threading

    class Counter:
        def __init__(self) -> None:
            self._lock = threading.Lock()
            self.count = 0  # guarded-by: _lock
            self.count = 1

        def _bump_locked(self) -> None:
            self.count += 1
    """
    assert run(src, "guarded-by") == []


def test_guarded_by_writes_qualifier_allows_reads():
    src = """
    import threading

    class Holder:
        def __init__(self) -> None:
            self._lock = threading.Lock()
            self.executor = object()  # guarded-by: _lock [writes]

        def read(self):
            return self.executor

        def swap(self) -> None:
            self.executor = object()
    """
    (finding,) = run(src, "guarded-by")
    assert "written in swap()" in finding.message


def test_guarded_by_nested_def_resets_held_locks():
    # A nested function may run on a pool thread; the enclosing `with`
    # does not protect its body.
    src = """
    import threading

    class Counter:
        def __init__(self) -> None:
            self._lock = threading.Lock()
            self.count = 0  # guarded-by: _lock

        def bump(self) -> None:
            with self._lock:
                def task() -> None:
                    self.count += 1
                self.pool.submit(task)
    """
    (finding,) = run(src, "guarded-by")
    assert "task()" in finding.message


# -- hot-path -----------------------------------------------------------


def test_hot_path_flags_alloc_in_loop():
    src = """
    def f(xs):  # lint: hot-path
        out = []
        for x in xs:
            out.append([x, x])
        return out
    """
    (finding,) = run(src, "hot-path")
    assert "allocates" in finding.message and "inside a loop" in finding.message


def test_hot_path_flags_comprehension_in_loop():
    src = """
    def f(xs):  # lint: hot-path
        out = []
        for x in xs:
            out.extend(y for y in x)
        return out
    """
    assert len(run(src, "hot-path")) == 1


def test_hot_path_flags_lock_in_loop():
    src = """
    def f(self, xs):  # lint: hot-path
        for x in xs:
            with self._lock:
                self.total += x
    """
    (finding,) = run(src, "hot-path")
    assert "acquires a lock inside a loop" in finding.message


def test_hot_path_flags_logging():
    src = """
    def f(xs):  # lint: hot-path
        logger.debug("called with %d items", len(xs))
        return sum(xs)
    """
    (finding,) = run(src, "hot-path")
    assert "logs on the hot path" in finding.message


def test_hot_path_flags_scalar_extraction_in_loop():
    src = """
    def f(arr, n):  # lint: hot-path
        total = 0.0
        for i in range(n):
            total += float(arr[i])
        return total
    """
    (finding,) = run(src, "hot-path")
    assert "vectorise" in finding.message


def test_hot_path_flags_item_in_loop():
    src = """
    def f(arr, n):  # lint: hot-path
        total = 0.0
        for i in range(n):
            total += arr[i].item()
        return total
    """
    (finding,) = run(src, "hot-path")
    assert ".item()" in finding.message


def test_hot_path_passes_clean_shapes():
    # Single lock acquisition, top-level comprehension, preallocated list:
    # all idiomatic warm-path shapes.
    src = """
    def f(self, xs):  # lint: hot-path
        squares = [x * x for x in xs]
        with self._lock:
            for s in squares:
                self.total += s
        return squares
    """
    assert run(src, "hot-path") == []


def test_hot_path_ignores_unmarked_functions():
    src = """
    def cold(xs):
        out = []
        for x in xs:
            out.append([x])
        return out
    """
    assert run(src, "hot-path") == []


def test_hot_path_marker_on_multiline_signature():
    src = """
    def f(
        xs,
        ys,
    ):  # lint: hot-path
        for x in xs:
            ys.append([x])
    """
    assert len(run(src, "hot-path")) == 1


# -- zero-cost ----------------------------------------------------------


def test_zero_cost_flags_unguarded_tracer():
    src = """
    def f(x, tracer=None):
        with tracer.span("f"):
            return x
    """
    (finding,) = run(src, "zero-cost")
    assert "tracer.span" in finding.message
    assert "pointer check" in finding.message


def test_zero_cost_passes_positive_guard():
    src = """
    def f(x, tracer=None):
        if tracer is not None:
            with tracer.span("f"):
                return x
        return x
    """
    assert run(src, "zero-cost") == []


def test_zero_cost_passes_early_return_guard():
    src = """
    def f(x, tracer=None):
        if tracer is None:
            return x
        with tracer.span("f"):
            return x
    """
    assert run(src, "zero-cost") == []


def test_zero_cost_passes_ifexp_and_boolop():
    src = """
    from contextlib import nullcontext

    def f(x, tracer=None):
        cm = tracer.span("f") if tracer is not None else nullcontext()
        flag = tracer is not None and tracer.enabled
        with cm:
            return x, flag
    """
    assert run(src, "zero-cost") == []


def test_zero_cost_allows_bare_passthrough():
    src = """
    def f(x, tracer=None):
        return g(x, tracer=tracer)
    """
    assert run(src, "zero-cost") == []


def test_zero_cost_ignores_functions_without_tracer_param():
    src = """
    def f(x, tracer):
        return tracer.span(x)
    """
    assert run(src, "zero-cost") == []


# -- backend-protocol ---------------------------------------------------


PROTOCOL_HEADER = """
    from typing import Protocol

    class RangeSearchBackend(Protocol):
        def report(self, box): ...
        def count(self, box): ...

        @property
        def n_active(self) -> int: ...

        @property
        def supports_insert(self) -> bool: ...

    DYNAMIC_ENGINES = ("dyn",)
"""


def test_backend_protocol_passes_conformant_backend():
    src = PROTOCOL_HEADER + """
    class DynBackend:
        def report(self, box, out=None):
            return []

        def count(self, box):
            return 0

        @property
        def n_active(self):
            return 0

        @property
        def supports_insert(self):
            return True

    def build_backend(engine, data):
        if engine == "dyn":
            return DynBackend(data)
        raise ValueError(engine)
    """
    assert run(src, "backend-protocol") == []


def test_backend_protocol_flags_missing_method():
    src = PROTOCOL_HEADER + """
    class DynBackend:
        def report(self, box):
            return []

        @property
        def n_active(self):
            return 0

        @property
        def supports_insert(self):
            return True

    def build_backend(engine, data):
        if engine == "dyn":
            return DynBackend(data)
    """
    findings = run(src, "backend-protocol")
    assert any("missing RangeSearchBackend.count" in f.message for f in findings)


def test_backend_protocol_flags_arg_name_mismatch():
    src = PROTOCOL_HEADER + """
    class DynBackend:
        def report(self, rectangle):
            return []

        def count(self, box):
            return 0

        @property
        def n_active(self):
            return 0

        @property
        def supports_insert(self):
            return True

    def build_backend(engine, data):
        if engine == "dyn":
            return DynBackend(data)
    """
    findings = run(src, "backend-protocol")
    assert any("not call-compatible" in f.message for f in findings)


def test_backend_protocol_flags_non_property():
    src = PROTOCOL_HEADER + """
    class DynBackend:
        def report(self, box):
            return []

        def count(self, box):
            return 0

        def n_active(self):
            return 0

        @property
        def supports_insert(self):
            return True

    def build_backend(engine, data):
        if engine == "dyn":
            return DynBackend(data)
    """
    findings = run(src, "backend-protocol")
    assert any("must be a @property" in f.message for f in findings)


def test_backend_protocol_flags_dishonest_supports_insert():
    # Listed in DYNAMIC_ENGINES but hard-codes False.
    src = PROTOCOL_HEADER + """
    class DynBackend:
        def report(self, box):
            return []

        def count(self, box):
            return 0

        @property
        def n_active(self):
            return 0

        @property
        def supports_insert(self):
            return False

    def build_backend(engine, data):
        if engine == "dyn":
            return DynBackend(data)
    """
    findings = run(src, "backend-protocol")
    assert any("DYNAMIC_ENGINES" in f.message for f in findings)


def test_backend_protocol_flags_static_engine_advertising_insert():
    src = PROTOCOL_HEADER + """
    class StaticBackend:
        def report(self, box):
            return []

        def count(self, box):
            return 0

        @property
        def n_active(self):
            return 0

        @property
        def supports_insert(self):
            return True

    def build_backend(engine, data):
        if engine == "static":
            return StaticBackend(data)
    """
    findings = run(src, "backend-protocol")
    assert any(
        "returns True but 'static' is not in DYNAMIC_ENGINES" in f.message
        for f in findings
    )


def test_backend_protocol_ignores_non_registry_modules():
    assert run("class Unrelated:\n    pass\n", "backend-protocol") == []


# -- pool-capture -------------------------------------------------------


def test_pool_capture_flags_closure_mutation():
    src = """
    def run(pool, xs):
        out = []

        def task(x):
            out.append(x * 2)

        for x in xs:
            pool.submit(task, x)
    """
    (finding,) = run(src, "pool-capture")
    assert "mutates out via .append()" in finding.message


def test_pool_capture_flags_self_state_write():
    src = """
    class Executor:
        def run(self, xs):
            def task(i, x):
                self.results[i] = x

            for i, x in enumerate(xs):
                self.pool.submit(task, i, x)
    """
    (finding,) = run(src, "pool-capture")
    assert "writes self.results[...]" in finding.message


def test_pool_capture_flags_span_without_parent():
    src = """
    class Executor:
        def run(self, tracer):
            def task():
                with tracer.span("unit"):
                    pass

            self.pool.submit(task)
    """
    (finding,) = run(src, "pool-capture")
    assert "explicit parent=" in finding.message


def test_pool_capture_passes_locked_mutation_and_parented_span():
    src = """
    class Executor:
        def run(self, tracer, parent, xs):
            out = []

            def task(x):
                with tracer.span("unit", parent=parent):
                    local = [x * 2]
                with self._lock:
                    out.extend(local)

            for x in xs:
                self.pool.submit(task, x)
    """
    assert run(src, "pool-capture") == []


def test_pool_capture_passes_local_mutation():
    src = """
    def run(pool, xs):
        def task(x):
            acc = []
            acc.append(x)
            return acc

        for x in xs:
            pool.submit(task, x)
    """
    assert run(src, "pool-capture") == []


def test_pool_capture_resolves_self_methods():
    src = """
    class Executor:
        def _work(self, x):
            self.seen.add(x)

        def run(self, xs):
            for x in xs:
                self.pool.submit(self._work, x)
    """
    (finding,) = run(src, "pool-capture")
    assert "mutates self.seen" in finding.message


# -- wire-schema --------------------------------------------------------


WIRE_HEADER = """
    from http.server import BaseHTTPRequestHandler

    class Handler(BaseHTTPRequestHandler):
        pass
"""


def test_wire_schema_flags_absolute_stamp_key():
    src = WIRE_HEADER + """
    def payload(result):
        return {"start_time": result.start_time}
    """
    (finding,) = run(src, "wire-schema")
    assert "absolute clock stamp" in finding.message


def test_wire_schema_flags_raw_emit_times():
    src = WIRE_HEADER + """
    def payload(result):
        out = {}
        out["emit_times"] = list(result.emit_times)
        return out
    """
    (finding,) = run(src, "wire-schema")
    assert "raw .emit_times" in finding.message


def test_wire_schema_passes_relative_times():
    src = WIRE_HEADER + """
    def payload(result, start):
        return {
            "emit_times": [t - start for t in result.emit_times],
            "duration_s": result.end_time - start,
        }
    """
    assert run(src, "wire-schema") == []


def test_wire_schema_ignores_non_handler_modules():
    src = """
    def payload(result):
        return {"start_time": result.start_time}
    """
    assert run(src, "wire-schema") == []


# -- snapshot-schema ----------------------------------------------------


SNAPSHOT_PATH = "src/repro/service/snapshot.py"


def run_at(source: str, rule: str, path: str):
    return lint_source(textwrap.dedent(source), path=path, rules=[rule])


def test_snapshot_schema_flags_pickle_import():
    src = """
    import pickle

    def save_state(obj, path):
        with open(path, "wb") as f:
            pickle.dump(obj, f)
    """
    findings = run_at(src, "snapshot-schema", SNAPSHOT_PATH)
    assert findings and "pickle" in findings[0].message


def test_snapshot_schema_flags_np_save():
    src = """
    import numpy as np

    def save_state(arr, path):
        np.save(path, arr)
    """
    (finding,) = run_at(src, "snapshot-schema", SNAPSHOT_PATH)
    assert "np.save" in finding.message


def test_snapshot_schema_flags_service_module_importing_snapshot():
    src = """
    import pickle
    from repro.service import snapshot

    def side_channel(obj, path):
        with open(path, "wb") as f:
            pickle.dump(obj, f)
    """
    findings = run_at(
        src, "snapshot-schema", "src/repro/service/supervisor.py"
    )
    assert findings and "pickle" in findings[0].message


def test_snapshot_schema_passes_container_io():
    src = """
    import numpy as np

    def read_segment(path, dtype, count, offset):
        buf = np.memmap(path, dtype=np.uint8, mode="r")
        return np.frombuffer(buf, dtype=dtype, count=count, offset=offset)
    """
    assert run_at(src, "snapshot-schema", SNAPSHOT_PATH) == []


def test_snapshot_schema_ignores_unrelated_modules():
    src = """
    import pickle

    def cache_to_disk(obj, path):
        with open(path, "wb") as f:
            pickle.dump(obj, f)
    """
    assert run_at(src, "snapshot-schema", "src/repro/workloads/io.py") == []


# -- failpoint-discipline -----------------------------------------------


def test_failpoint_discipline_flags_unguarded_hit():
    src = """
    from repro.service import faults

    def eval_shard(unit):
        faults.hit("shard_eval")
        return unit
    """
    (finding,) = run(src, "failpoint-discipline")
    assert finding.rule == "failpoint-discipline"
    assert "eval_shard()" in finding.message
    assert "ARMED is not None" in finding.message


def test_failpoint_discipline_passes_guarded_hit():
    src = """
    from repro.service import faults

    def eval_shard(unit):
        if faults.ARMED is not None:
            faults.hit("shard_eval")
        return unit
    """
    assert run(src, "failpoint-discipline") == []


def test_failpoint_discipline_guard_survives_with_and_try():
    # The repo's real shape: the guard sits inside `with lock:` /
    # `try:` blocks, which must not launder the domination analysis.
    src = """
    from repro.service import faults

    def eval_shard(unit, lock):
        with lock:
            try:
                if faults.ARMED is not None:
                    faults.hit("shard_eval")
            finally:
                pass
        return unit
    """
    assert run(src, "failpoint-discipline") == []


def test_failpoint_discipline_early_return_guard():
    src = """
    from repro.service import faults

    def maybe_inject():
        if faults.ARMED is None:
            return
        faults.hit("handler")
    """
    assert run(src, "failpoint-discipline") == []


def test_failpoint_discipline_negative_guard_without_return_still_flags():
    src = """
    from repro.service import faults

    def maybe_inject():
        if faults.ARMED is None:
            pass
        faults.hit("handler")
    """
    (finding,) = run(src, "failpoint-discipline")
    assert "maybe_inject()" in finding.message


def test_failpoint_discipline_flags_hot_path_touchpoint():
    src = """
    from repro.service import faults

    def leaf_loop(leaves):  # lint: hot-path
        if faults.ARMED is not None:
            faults.hit("shard_eval")
        return leaves
    """
    findings = run(src, "failpoint-discipline")
    assert findings, "hot-path touchpoint must be flagged even when guarded"
    assert all("hot-path" in f.message for f in findings)


def test_failpoint_discipline_exempts_faults_module():
    src = """
    def hit(point):
        return point
    """
    assert (
        run_at(src, "failpoint-discipline", "src/repro/service/faults.py")
        == []
    )
