"""Lock-discipline regressions the analyzer must keep catching.

The acceptance bar for the guarded-by rule is concrete: reverting the PR-2
telemetry fix (snapshotting counters under the lock) must light the rule
up again.  These tests simulate that revert textually and also pin the
behaviour of the genuine findings fixed in this PR (the unlocked
``__len__`` readers and the Prometheus HELP-table read).
"""

from __future__ import annotations

import threading
from pathlib import Path

from repro.analysis import lint_source
from repro.service.cache import LeafResultCache
from repro.service.observability import MetricsRegistry
from repro.service.planner import PlanCache

SRC = Path(__file__).resolve().parents[2] / "src" / "repro" / "service"


def _lint_file(name: str, mutate=None):
    source = (SRC / name).read_text()
    if mutate is not None:
        source = mutate(source)
    return lint_source(source, path=name, rules=["guarded-by"])


# -- the PR-2 bug class stays detectable --------------------------------


def test_service_modules_currently_clean():
    for name in ("telemetry.py", "cache.py", "observability.py"):
        assert _lint_file(name) == [], name


def test_reverting_pr2_telemetry_fix_is_caught():
    # The PR-2 bug: summary() read the counters without the telemetry
    # lock, tearing ratios like qps. Simulate the revert by stripping the
    # lock acquisitions; every annotated counter access must now flag.
    def strip_locks(source: str) -> str:
        assert "with self._lock:" in source
        return source.replace("with self._lock:", "if True:")

    findings = _lint_file("telemetry.py", mutate=strip_locks)
    assert findings, "guarded-by must flag the reverted telemetry fix"
    assert any(
        "_latencies" in f.message and "summary()" in f.message for f in findings
    )


def test_unlocking_cache_len_is_caught():
    def unlock_len(source: str) -> str:
        locked = "with self._lock:\n            return len(self._entries)"
        assert locked in source
        return source.replace(locked, "return len(self._entries)")

    findings = _lint_file("cache.py", mutate=unlock_len)
    assert any("_entries" in f.message and "__len__()" in f.message for f in findings)


def test_unlocking_help_table_read_is_caught():
    def unlock_snapshot(source: str) -> str:
        locked = "with self._lock:\n            return dict(self._help)"
        assert locked in source
        return source.replace(locked, "return dict(self._help)")

    findings = _lint_file("observability.py", mutate=unlock_snapshot)
    assert any(
        "_help" in f.message and "help_snapshot()" in f.message for f in findings
    )


# -- behaviour pins for the fixes applied in this PR --------------------


def test_leaf_cache_len_counts_entries():
    cache = LeafResultCache(capacity=4)
    assert len(cache) == 0
    cache.put("a", {1, 2})
    cache.put("b", {3})
    assert len(cache) == 2
    assert "a" in cache and "c" not in cache


def test_plan_cache_len_counts_plans():
    from repro.core.measures import PercentileMeasure
    from repro.core.predicates import pred
    from repro.geometry.rectangle import Rectangle

    cache = PlanCache(capacity=8)
    assert len(cache) == 0
    cache.plan(pred(PercentileMeasure(Rectangle([0.0], [0.5])), 0.2))
    assert len(cache) == 1


def test_help_snapshot_is_a_consistent_copy():
    reg = MetricsRegistry()
    reg.describe("repro_test_total", "counter", "A test counter.")
    snap = reg.help_snapshot()
    assert snap["repro_test_total"] == ("counter", "A test counter.")
    # It is a copy: mutating it does not corrupt the registry.
    snap.clear()
    assert reg.help_snapshot()["repro_test_total"][0] == "counter"


def test_len_safe_during_concurrent_churn():
    # The bug being prevented: OrderedDict len/iteration racing a
    # concurrent insert-evict. With the lock in __len__ this loop is
    # steady under churn.
    cache = LeafResultCache(capacity=8)
    stop = threading.Event()
    errors = []

    def churn() -> None:
        i = 0
        while not stop.is_set():
            cache.put(i % 16, {i})
            i += 1

    def measure() -> None:
        try:
            for _ in range(2000):
                n = len(cache)
                assert 0 <= n <= 8
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    t1 = threading.Thread(target=churn)
    t2 = threading.Thread(target=measure)
    t1.start()
    t2.start()
    t2.join()
    stop.set()
    t1.join()
    assert errors == []


# -- PR-10 federation module stays inside the lint disciplines ----------


def _lint_federation(mutate=None, rules=("failpoint-discipline",)):
    source = (SRC / "federation.py").read_text()
    if mutate is not None:
        source = mutate(source)
    return lint_source(source, path="federation.py", rules=list(rules))


def test_federation_currently_clean():
    assert _lint_federation(rules=["failpoint-discipline", "guarded-by"]) == []


def test_stripping_node_rpc_guard_is_caught():
    # The coordinator's node_rpc touchpoint must stay zero-cost: removing
    # the `faults.ARMED is not None` guard re-introduces an unconditional
    # call on every RPC attempt, and the rule must light up.
    def strip_guard(source: str) -> str:
        guarded = (
            "if faults.ARMED is not None:\n"
            "                    faults.hit(\"node_rpc\")"
        )
        assert guarded in source
        return source.replace(guarded, "faults.hit(\"node_rpc\")")

    findings = _lint_federation(mutate=strip_guard)
    assert findings, "failpoint-discipline must flag the unguarded hit"
    assert any(
        "faults.hit()" in f.message and "run()" in f.message
        for f in findings
    )


def test_unlocking_breaker_state_is_caught():
    # CircuitBreaker._state is read under _lock everywhere; stripping the
    # lock from allow() must trip guarded-by.
    def unlock_allow(source: str) -> str:
        locked = (
            "    def allow(self) -> bool:\n"
            '        """May a request go out now?  Half-open admits '
            'exactly one probe."""\n'
            "        with self._lock:\n"
        )
        assert locked in source
        return source.replace(
            locked,
            locked.replace("with self._lock:", "if True:"),
        )

    findings = _lint_federation(mutate=unlock_allow, rules=["guarded-by"])
    assert any("_state" in f.message and "allow()" in f.message for f in findings)
