"""Tests for the vectorized columnar range-search backend."""

import numpy as np
import pytest

from repro.index.columnar import ColumnarStore, MIN_DEAD_FOR_COMPACT
from repro.index.query_box import QueryBox


def naive_report(points, box):
    return sorted(np.nonzero(box.contains_points(points))[0].tolist())


class TestQueries:
    def test_report_matches_naive(self, rng):
        pts = rng.uniform(size=(300, 4))
        store = ColumnarStore(pts)
        box = QueryBox.closed([0.2] * 4, [0.8] * 4)
        assert sorted(store.report(box)) == naive_report(pts, box)

    def test_count_and_first(self, rng):
        pts = rng.uniform(size=(200, 2))
        store = ColumnarStore(pts)
        box = QueryBox.closed([0.0, 0.0], [0.4, 0.4])
        truth = naive_report(pts, box)
        assert store.count(box) == len(truth)
        first = store.report_first(box)
        assert (first is None) == (not truth)
        if truth:
            assert first in truth

    def test_open_bounds(self):
        store = ColumnarStore(np.array([[0.0], [1.0], [2.0]]))
        assert store.report(QueryBox([(0.0, 2.0, True, True)])) == [1]

    def test_report_groups_is_group_by(self):
        pts = np.array([[0.0], [1.0], [2.0], [3.0]])
        store = ColumnarStore(pts, ids=[("a", 0), ("a", 1), ("b", 0), ("c", 0)])
        assert store.report_groups(QueryBox.closed([0.5], [2.5])) == {"a", "b"}
        store.deactivate(("a", 1))
        assert store.report_groups(QueryBox.closed([0.5], [2.5])) == {"b"}

    def test_dim_mismatch(self):
        store = ColumnarStore(np.zeros((3, 2)))
        with pytest.raises(ValueError):
            store.report(QueryBox.closed([0.0], [1.0]))

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError):
            ColumnarStore(np.zeros((2, 1)), ids=["x", "x"])


class TestActivation:
    def test_roundtrip(self, rng):
        pts = rng.uniform(size=(100, 2))
        store = ColumnarStore(pts)
        box = QueryBox.unbounded(2)
        for i in range(10):
            store.deactivate(i)
        assert store.n_active == 90
        assert sorted(store.report(box)) == list(range(10, 100))
        for i in range(10):
            store.activate(i)
        assert sorted(store.report(box)) == list(range(100))

    def test_double_toggle_raises(self):
        store = ColumnarStore(np.zeros((2, 1)))
        store.deactivate(0)
        with pytest.raises(KeyError):
            store.deactivate(0)
        store.activate(0)
        with pytest.raises(KeyError):
            store.activate(0)

    def test_unknown_id_raises(self):
        store = ColumnarStore(np.zeros((1, 1)))
        with pytest.raises(KeyError):
            store.deactivate("nope")


class TestDynamics:
    def test_insert_visible_and_grouped(self, rng):
        store = ColumnarStore(rng.uniform(size=(20, 2)), ids=[(0, i) for i in range(20)])
        store.insert(np.array([[0.5, 0.5]]), ids=[(9, 0)])
        box = QueryBox.closed([0.45, 0.45], [0.55, 0.55])
        assert (9, 0) in store.report(box)
        assert 9 in store.report_groups(box)

    def test_insert_duplicate_id_rejected(self):
        store = ColumnarStore(np.zeros((2, 1)))
        with pytest.raises(KeyError):
            store.insert(np.array([[1.0]]), ids=[0])

    def test_remove_is_permanent(self, rng):
        store = ColumnarStore(rng.uniform(size=(30, 2)))
        store.remove(5)
        assert 5 not in store.report(QueryBox.unbounded(2))
        assert len(store) == 29
        with pytest.raises(KeyError):
            store.activate(5)
        # The freed id is re-insertable immediately.
        store.insert(np.array([[0.5, 0.5]]), ids=[5])
        assert 5 in store.report(QueryBox.unbounded(2))

    def test_compaction_preserves_answers(self, rng):
        n = 4 * MIN_DEAD_FOR_COMPACT
        pts = rng.uniform(size=(n, 2))
        store = ColumnarStore(pts)
        victims = rng.choice(n, size=MIN_DEAD_FOR_COMPACT + 10, replace=False)
        survivors_inactive = []
        for i, v in enumerate(sorted(int(v) for v in victims)):
            store.remove(v)
        # Deactivate a couple of survivors; compaction must keep the flags.
        alive = sorted(set(range(n)) - {int(v) for v in victims})
        for v in alive[:5]:
            store.deactivate(v)
            survivors_inactive.append(v)
        box = QueryBox.unbounded(2)
        expect = sorted(set(alive) - set(survivors_inactive))
        assert sorted(store.report(box)) == expect
        assert len(store) == len(alive)
        assert store.n_active == len(expect)

    def test_capacity_growth_keeps_old_points(self, rng):
        store = ColumnarStore(rng.uniform(size=(3, 1)))
        for i in range(200):
            store.insert(np.array([[float(i)]]), ids=[f"n{i}"])
        assert len(store) == 203
        assert store.count(QueryBox.unbounded(1)) == 203
