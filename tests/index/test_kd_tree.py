"""Tests for the dynamic kd-tree engine."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.index.kd_tree import (
    DynamicKDTree,
    MIN_BUFFER_FOR_REBUILD,
    REBUILD_FRACTION,
)
from repro.index.query_box import QueryBox


def naive_report(points, box):
    return sorted(np.nonzero(box.contains_points(points))[0].tolist())


class TestQueries:
    def test_report_matches_naive(self, rng):
        pts = rng.uniform(size=(300, 4))
        tree = DynamicKDTree(pts)
        box = QueryBox.closed([0.2] * 4, [0.8] * 4)
        assert sorted(tree.report(box)) == naive_report(pts, box)

    def test_count(self, rng):
        pts = rng.uniform(size=(200, 2))
        tree = DynamicKDTree(pts)
        box = QueryBox.closed([0.0, 0.0], [0.4, 0.4])
        assert tree.count(box) == len(naive_report(pts, box))

    def test_report_first_membership(self, rng):
        pts = rng.uniform(size=(200, 3))
        tree = DynamicKDTree(pts)
        box = QueryBox.closed([0.4] * 3, [0.6] * 3)
        truth = naive_report(pts, box)
        first = tree.report_first(box)
        assert (first is None) == (not truth)
        if truth:
            assert first in truth

    def test_open_bounds(self):
        pts = np.array([[0.0], [1.0], [2.0]])
        tree = DynamicKDTree(pts)
        box = QueryBox([(0.0, 2.0, True, True)])
        assert tree.report(box) == [1]

    def test_custom_ids(self):
        tree = DynamicKDTree(np.array([[0.0], [5.0]]), ids=[("a", 1), ("b", 2)])
        assert tree.report(QueryBox.closed([4.0], [6.0])) == [("b", 2)]

    def test_dim_mismatch(self):
        tree = DynamicKDTree(np.zeros((3, 2)))
        with pytest.raises(ValueError):
            tree.report(QueryBox.closed([0.0], [1.0]))

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10_000), n=st.integers(1, 120), dim=st.integers(1, 5))
    def test_property_report(self, seed, n, dim):
        rng = np.random.default_rng(seed)
        pts = rng.uniform(size=(n, dim))
        tree = DynamicKDTree(pts, leaf_size=4)
        lo = rng.uniform(0, 1, size=dim)
        hi = rng.uniform(0, 1, size=dim)
        lo, hi = np.minimum(lo, hi), np.maximum(lo, hi)
        box = QueryBox.closed(lo, hi)
        assert sorted(tree.report(box)) == naive_report(pts, box)


class TestActivation:
    def test_deactivate_activate_roundtrip(self, rng):
        pts = rng.uniform(size=(100, 2))
        tree = DynamicKDTree(pts)
        box = QueryBox.closed([0.0, 0.0], [1.0, 1.0])
        truth = naive_report(pts, box)
        for i in truth[:10]:
            tree.deactivate(i)
        assert sorted(tree.report(box)) == truth[10:]
        assert tree.n_active == 90
        for i in truth[:10]:
            tree.activate(i)
        assert sorted(tree.report(box)) == truth

    def test_report_first_skips_inactive(self, rng):
        pts = rng.uniform(size=(60, 2))
        tree = DynamicKDTree(pts)
        box = QueryBox.closed([0.0, 0.0], [1.0, 1.0])
        for i in range(60):
            got = tree.report_first(box)
            assert got is not None
            tree.deactivate(got)
        assert tree.report_first(box) is None

    def test_double_toggle_raises(self):
        tree = DynamicKDTree(np.zeros((2, 1)))
        tree.deactivate(0)
        with pytest.raises(KeyError):
            tree.deactivate(0)
        tree.activate(0)
        with pytest.raises(KeyError):
            tree.activate(0)

    def test_unknown_id_raises(self):
        tree = DynamicKDTree(np.zeros((1, 1)))
        with pytest.raises(KeyError):
            tree.deactivate("nope")


class TestDynamics:
    def test_insert_visible(self, rng):
        pts = rng.uniform(size=(20, 2))
        tree = DynamicKDTree(pts)
        tree.insert(np.array([[0.5, 0.5]]), ids=["new"])
        box = QueryBox.closed([0.45, 0.45], [0.55, 0.55])
        assert "new" in tree.report(box)

    def test_insert_duplicate_id_rejected(self):
        tree = DynamicKDTree(np.zeros((2, 1)))
        with pytest.raises(KeyError):
            tree.insert(np.array([[1.0]]), ids=[0])

    def test_buffer_rebuild_preserves_state(self, rng):
        pts = rng.uniform(size=(50, 2))
        tree = DynamicKDTree(pts)
        tree.deactivate(3)
        # Insert enough to force a rebuild.
        extra = rng.uniform(size=(100, 2))
        tree.insert(extra, ids=[f"x{i}" for i in range(100)])
        box = QueryBox.closed([0.0, 0.0], [1.0, 1.0])
        got = tree.report(box)
        assert 3 not in got
        assert len(got) == 50 - 1 + 100

    def test_remove_permanent(self, rng):
        pts = rng.uniform(size=(30, 2))
        tree = DynamicKDTree(pts)
        tree.remove(5)
        box = QueryBox.closed([0.0, 0.0], [1.0, 1.0])
        assert 5 not in tree.report(box)
        # Force rebuild; the removed id must stay gone and be re-insertable.
        tree.insert(rng.uniform(size=(100, 2)), ids=[f"y{i}" for i in range(100)])
        assert 5 not in tree.report(box)

    def test_deactivate_buffered_point(self, rng):
        tree = DynamicKDTree(np.zeros((4, 1)))
        tree.insert(np.array([[9.0]]), ids=["b"])
        tree.deactivate("b")
        assert tree.report(QueryBox.closed([8.0], [10.0])) == []
        tree.activate("b")
        assert tree.report(QueryBox.closed([8.0], [10.0])) == ["b"]

    def test_report_groups(self, rng):
        pts = rng.uniform(size=(40, 2))
        tree = DynamicKDTree(pts, ids=[(i % 4, i) for i in range(40)])
        box = QueryBox.closed([0.0, 0.0], [1.0, 1.0])
        assert tree.report_groups(box) == {0, 1, 2, 3}
        for i in range(0, 40, 4):  # hide all of group 0
            tree.deactivate((0, i))
        assert tree.report_groups(box) == {1, 2, 3}

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_churn_consistency(self, seed):
        """Random insert/remove/deactivate churn stays consistent with naive."""
        rng = np.random.default_rng(seed)
        pts = rng.uniform(size=(30, 2))
        tree = DynamicKDTree(pts, leaf_size=4)
        alive = {i: pts[i] for i in range(30)}
        active = set(alive)
        next_id = 30
        for _ in range(40):
            op = rng.integers(0, 3)
            if op == 0:  # insert
                p = rng.uniform(size=(1, 2))
                tree.insert(p, ids=[next_id])
                alive[next_id] = p[0]
                active.add(next_id)
                next_id += 1
            elif op == 1 and active:  # remove
                victim = sorted(active)[int(rng.integers(len(active)))]
                tree.remove(victim)
                del alive[victim]
                active.discard(victim)
            elif op == 2 and active:  # toggle activation
                victim = sorted(active)[int(rng.integers(len(active)))]
                tree.deactivate(victim)
                tree.activate(victim)
        box = QueryBox.closed([0.2, 0.2], [0.9, 0.9])
        expected = sorted(
            k for k in active if box.contains_point(alive[k])
        )
        assert sorted(tree.report(box)) == expected


class TestAmortizedRebuild:
    """The side buffer outgrowing REBUILD_FRACTION must trigger a rebuild
    that preserves activation state and honors removals."""

    @staticmethod
    def _grow_past_threshold(tree, rng, prefix):
        """Insert just enough points to cross the rebuild threshold."""
        threshold = max(
            MIN_BUFFER_FOR_REBUILD, int(REBUILD_FRACTION * len(tree._ids))
        )
        ids = [f"{prefix}{i}" for i in range(threshold)]
        tree.insert(rng.uniform(size=(threshold, tree.dim)), ids=ids)
        return ids

    def test_rebuild_absorbs_buffer(self, rng):
        pts = rng.uniform(size=(50, 2))
        tree = DynamicKDTree(pts)
        new_ids = self._grow_past_threshold(tree, rng, "g")
        # Buffer was folded into the main tree: every id is tree-resident.
        assert tree._buf_n == 0
        assert all(pid in tree._pos_of_id for pid in new_ids)
        assert len(tree) == 50 + len(new_ids)
        assert tree.n_active == 50 + len(new_ids)

    def test_activation_state_survives_rebuild(self, rng):
        pts = rng.uniform(size=(50, 2))
        tree = DynamicKDTree(pts)
        tree.deactivate(7)
        tree.deactivate(11)
        # Deactivate one *buffered* point, then push past the threshold.
        tree.insert(rng.uniform(size=(1, 2)), ids=["buffered"])
        tree.deactivate("buffered")
        new_ids = self._grow_past_threshold(tree, rng, "h")
        assert tree._buf_n == 0  # rebuild happened
        box = QueryBox.unbounded(2)
        got = set(tree.report(box))
        assert {7, 11, "buffered"} & got == set()
        assert set(new_ids) <= got
        assert tree.n_active == len(tree) - 3
        # Toggles still work post-rebuild (paths/leaf assignment rebuilt).
        tree.activate(7)
        assert 7 in set(tree.report(box))
        with pytest.raises(KeyError):
            tree.activate("buffered2")

    def test_removed_ids_dropped_and_reusable(self, rng):
        pts = rng.uniform(size=(50, 2))
        tree = DynamicKDTree(pts)
        tree.remove(3)
        tree.insert(rng.uniform(size=(1, 2)), ids=["victim"])
        tree.remove("victim")
        new_ids = self._grow_past_threshold(tree, rng, "r")
        assert tree._buf_n == 0
        assert len(tree) == 50 - 2 + len(new_ids) + 1
        box = QueryBox.unbounded(2)
        got = set(tree.report(box))
        assert 3 not in got and "victim" not in got
        # Removed ids are gone from the structure entirely post-rebuild...
        with pytest.raises(KeyError):
            tree.deactivate("victim")
        # ... and re-insertable as fresh points.
        tree.insert(np.array([[0.5, 0.5]]), ids=["victim"])
        assert "victim" in set(tree.report(box))

    def test_report_first_correct_across_rebuild(self, rng):
        pts = rng.uniform(size=(60, 2))
        tree = DynamicKDTree(pts, leaf_size=4)
        self._grow_past_threshold(tree, rng, "x")
        box = QueryBox.closed([0.2, 0.2], [0.8, 0.8])
        expected = set(tree.report(box))
        seen = set()
        while True:
            hit = tree.report_first(box)
            if hit is None:
                break
            seen.add(hit)
            tree.deactivate(hit)
        assert seen == expected
        for pid in seen:
            tree.activate(pid)
        assert set(tree.report(box)) == expected
