"""Tests for QueryBox open/closed semantics and bbox pruning tests."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.index.query_box import QueryBox


class TestPointMembership:
    def test_closed(self):
        box = QueryBox.closed([0.0], [1.0])
        assert box.contains_point([0.0]) and box.contains_point([1.0])

    def test_open_lo(self):
        box = QueryBox([(0.0, 1.0, True, False)])
        assert not box.contains_point([0.0]) and box.contains_point([1.0])

    def test_open_hi(self):
        box = QueryBox([(0.0, 1.0, False, True)])
        assert box.contains_point([0.0]) and not box.contains_point([1.0])

    def test_unbounded(self):
        box = QueryBox.unbounded(3)
        assert box.contains_point([1e9, -1e9, 0.0])

    def test_vectorized_matches_scalar(self, rng):
        box = QueryBox([(0.2, 0.8, True, False), (0.1, 0.9, False, True)])
        pts = rng.uniform(size=(50, 2))
        mask = box.contains_points(pts)
        for p, m in zip(pts, mask):
            assert box.contains_point(p) == bool(m)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            QueryBox([])

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            QueryBox([(math.nan, 1.0, False, False)])

    def test_with_dimension(self):
        box = QueryBox.closed([0.0, 0.0], [1.0, 1.0])
        box2 = box.with_dimension(1, 0.5, 2.0)
        assert not box2.contains_point([0.5, 0.2])
        assert box2.contains_point([0.5, 1.5])


class TestBBoxTests:
    """Soundness of the pruning predicates used by tree traversals."""

    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_bbox_predicates_sound(self, seed):
        rng = np.random.default_rng(seed)
        # Integer grid so open/closed boundary coincidences are common.
        pts = rng.integers(0, 4, size=(20, 2)).astype(float)
        blo, bhi = pts.min(axis=0), pts.max(axis=0)
        cons = []
        for _ in range(2):
            a, b = sorted(rng.integers(0, 4, size=2).tolist())
            cons.append((float(a), float(b), bool(rng.integers(2)), bool(rng.integers(2))))
        box = QueryBox(cons)
        inside = box.contains_points(pts)
        if not box.intersects_bbox(blo, bhi):
            assert not inside.any(), "pruned a bbox containing matches"
        if box.contains_bbox(blo, bhi):
            assert inside.all(), "claimed full containment wrongly"

    def test_disjoint_open_boundary(self):
        # Box is [0, 1); bbox starts exactly at 1 -> no overlap.
        box = QueryBox([(0.0, 1.0, False, True)])
        assert not box.intersects_bbox(np.array([1.0]), np.array([2.0]))

    def test_touching_closed_boundary(self):
        box = QueryBox([(0.0, 1.0, False, False)])
        assert box.intersects_bbox(np.array([1.0]), np.array([2.0]))
