"""Cross-backend equivalence: kd, range-tree and columnar must agree.

This is the safety net of the pluggable-backend refactor: every registered
:class:`~repro.index.backend.RangeSearchBackend` is driven with the same
random mapped point sets, orthant queries and activation sequences, and
must produce identical id sets for ``report``, identical group sets for
``report_groups``, identical ``count`` values, and consistent
``report_first`` membership.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.index import ENGINES, QueryBox, build_backend
from repro.index.backend import (
    DYNAMIC_ENGINES,
    count_many_of,
    group_of,
    report_groups_many_of,
    report_many_of,
)


def random_orthant(rng: np.random.Generator, dim: int) -> QueryBox:
    """A random box mixing open/closed and one-sided constraints."""
    cons = []
    for _ in range(dim):
        lo, hi = sorted(rng.uniform(-0.2, 1.2, size=2))
        kind = rng.integers(0, 4)
        if kind == 0:
            lo = -np.inf
        elif kind == 1:
            hi = np.inf
        cons.append((float(lo), float(hi), bool(rng.integers(2)), bool(rng.integers(2))))
    return QueryBox(cons)


def build_all(pts, ids, leaf_size=4):
    return {e: build_backend(pts, list(ids), e, leaf_size=leaf_size) for e in ENGINES}


def assert_agree(backends: dict, box: QueryBox) -> None:
    reports = {e: sorted(b.report(box)) for e, b in backends.items()}
    ref = reports["kd"]
    for e, got in reports.items():
        assert got == ref, f"report mismatch on {e}"
    groups_ref = {group_of(i) for i in ref}
    for e, b in backends.items():
        assert b.report_groups(box) == groups_ref, f"report_groups mismatch on {e}"
        assert b.count(box) == len(ref), f"count mismatch on {e}"
        first = b.report_first(box)
        assert (first is None) == (not ref), f"report_first emptiness on {e}"
        if ref:
            assert first in ref, f"report_first membership on {e}"


class TestStaticEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 10_000), n=st.integers(1, 80), dim=st.integers(1, 4))
    def test_random_orthants(self, seed, n, dim):
        rng = np.random.default_rng(seed)
        pts = rng.uniform(size=(n, dim))
        ids = [(int(i) % 7, int(i)) for i in range(n)]
        backends = build_all(pts, ids)
        for _ in range(5):
            assert_agree(backends, random_orthant(rng, dim))

    def test_duplicate_coordinates(self):
        # Ties on the split axis stress the tree partitioning.
        pts = np.array([[0.5, 0.5]] * 9 + [[0.25, 0.75]] * 4)
        ids = [(i % 3, i) for i in range(13)]
        backends = build_all(pts, ids)
        rng = np.random.default_rng(0)
        for _ in range(10):
            assert_agree(backends, random_orthant(rng, 2))


class TestActivationEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000), n=st.integers(2, 60))
    def test_random_toggle_sequences(self, seed, n):
        rng = np.random.default_rng(seed)
        dim = int(rng.integers(1, 4))
        pts = rng.uniform(size=(n, dim))
        ids = [(int(i) % 5, int(i)) for i in range(n)]
        backends = build_all(pts, ids)
        active = {pid: True for pid in ids}
        for _ in range(30):
            pid = ids[int(rng.integers(n))]
            for b in backends.values():
                if active[pid]:
                    b.deactivate(pid)
                else:
                    b.activate(pid)
            active[pid] = not active[pid]
            if rng.integers(3) == 0:
                assert_agree(backends, random_orthant(rng, dim))
        assert_agree(backends, QueryBox.unbounded(dim))
        n_active = sum(active.values())
        for e, b in backends.items():
            assert b.n_active == n_active, f"n_active mismatch on {e}"

    def test_report_loop_simulation(self, rng):
        """The Algorithm-2 pattern: report_first, hide the whole group."""
        pts = rng.uniform(size=(60, 3))
        ids = [(i % 6, i) for i in range(60)]
        group_ids = {k: [pid for pid in ids if pid[0] == k] for k in range(6)}
        backends = build_all(pts, ids)
        box = QueryBox.closed([0.1] * 3, [0.9] * 3)
        expect = {e: b.report_groups(box) for e, b in backends.items()}
        for e, b in backends.items():
            got = set()
            while True:
                hit = b.report_first(box)
                if hit is None:
                    break
                got.add(hit[0])
                for pid in group_ids[hit[0]]:
                    b.deactivate(pid)
            for k in got:
                for pid in group_ids[k]:
                    b.activate(pid)
            assert got == expect[e] == expect["kd"], e


class TestDynamicEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_insert_remove_churn(self, seed):
        """Dynamic backends stay equivalent under mixed churn."""
        rng = np.random.default_rng(seed)
        dim = int(rng.integers(1, 4))
        pts = rng.uniform(size=(20, dim))
        ids = [(int(i) % 4, int(i)) for i in range(20)]
        backends = {
            e: build_backend(pts, list(ids), e, leaf_size=4)
            for e in DYNAMIC_ENGINES
        }
        live = list(ids)
        next_id = 20
        for _ in range(50):
            op = rng.integers(0, 3)
            if op == 0:
                pid = (int(next_id) % 4, int(next_id))
                row = rng.uniform(size=(1, dim))
                for b in backends.values():
                    b.insert(row, [pid])
                live.append(pid)
                next_id += 1
            elif op == 1 and len(live) > 1:
                pid = live.pop(int(rng.integers(len(live))))
                for b in backends.values():
                    b.remove(pid)
            else:
                box = random_orthant(rng, dim)
                reports = {e: sorted(b.report(box)) for e, b in backends.items()}
                groups = {e: b.report_groups(box) for e, b in backends.items()}
                assert all(r == reports["kd"] for r in reports.values())
                assert all(g == groups["kd"] for g in groups.values())
        box = QueryBox.unbounded(dim)
        final = {e: sorted(b.report(box)) for e, b in backends.items()}
        assert all(r == sorted(live) for r in final.values()), final


class TestBatchKernels:
    """The multi-box kernels must equal the per-box loop on every backend:
    ``report_many(boxes) ≡ [report(b) for b in boxes]`` and likewise for
    ``count_many`` / ``report_groups_many``."""

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        n=st.integers(1, 80),
        dim=st.integers(1, 4),
        q=st.integers(0, 12),
    )
    def test_report_many_equals_per_box_loop(self, seed, n, dim, q):
        rng = np.random.default_rng(seed)
        pts = rng.uniform(size=(n, dim))
        ids = [(int(i) % 7, int(i)) for i in range(n)]
        backends = build_all(pts, ids)
        boxes = [random_orthant(rng, dim) for _ in range(q)]
        for e, b in backends.items():
            batch = [sorted(r) for r in b.report_many(boxes)]
            loop = [sorted(b.report(box)) for box in boxes]
            assert batch == loop, f"report_many mismatch on {e}"
            assert b.count_many(boxes) == [b.count(box) for box in boxes], (
                f"count_many mismatch on {e}"
            )
            assert b.report_groups_many(boxes) == [
                b.report_groups(box) for box in boxes
            ], f"report_groups_many mismatch on {e}"

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000), n=st.integers(2, 60))
    def test_batch_kernels_respect_activation(self, seed, n):
        rng = np.random.default_rng(seed)
        dim = int(rng.integers(1, 4))
        pts = rng.uniform(size=(n, dim))
        ids = [(int(i) % 5, int(i)) for i in range(n)]
        backends = build_all(pts, ids)
        for pid in ids[:: max(1, n // 4)]:
            for b in backends.values():
                b.deactivate(pid)
        boxes = [random_orthant(rng, dim) for _ in range(6)]
        ref = [sorted(r) for r in backends["kd"].report_many(boxes)]
        for e, b in backends.items():
            assert [sorted(r) for r in b.report_many(boxes)] == ref, e

    def test_batch_kernels_cover_kd_side_buffer(self, rng):
        """Inserted-but-not-rebuilt points must appear in batch answers."""
        pts = rng.uniform(size=(30, 2))
        ids = [(i % 3, i) for i in range(30)]
        tree = build_backend(pts, list(ids), "kd", leaf_size=4)
        tree.insert(rng.uniform(size=(10, 2)), [(i % 3, i) for i in range(30, 40)])
        boxes = [random_orthant(rng, 2) for _ in range(8)]
        assert [sorted(r) for r in tree.report_many(boxes)] == [
            sorted(tree.report(box)) for box in boxes
        ]

    def test_fallback_for_backends_without_batch_kernels(self, rng):
        """A backend that opts out of the ``*_many`` methods is served by
        the per-box fallback with identical results."""
        pts = rng.uniform(size=(25, 2))
        ids = [(i % 4, i) for i in range(25)]
        full = build_backend(pts, list(ids), "kd", leaf_size=4)

        class Bare:
            """Minimal backend surface: no *_many methods."""

            def report(self, box):
                return full.report(box)

            def count(self, box):
                return full.count(box)

            def report_groups(self, box):
                return full.report_groups(box)

        bare = Bare()
        boxes = [random_orthant(rng, 2) for _ in range(7)]
        assert [sorted(r) for r in report_many_of(bare, boxes)] == [
            sorted(r) for r in full.report_many(boxes)
        ]
        assert count_many_of(bare, boxes) == full.count_many(boxes)
        assert report_groups_many_of(bare, boxes) == full.report_groups_many(boxes)

    def test_empty_batch(self, rng):
        pts = rng.uniform(size=(5, 2))
        for e in ENGINES:
            b = build_backend(pts, list(range(5)), e)
            assert b.report_many([]) == []
            assert b.count_many([]) == []
            assert b.report_groups_many([]) == []


class TestProtocolSurface:
    def test_static_backend_refuses_dynamics(self, rng):
        from repro.errors import CapabilityError

        b = build_backend(rng.uniform(size=(5, 2)), list(range(5)), "rangetree")
        assert not b.supports_insert
        with pytest.raises(CapabilityError):
            b.insert(np.zeros((1, 2)), ["x"])
        with pytest.raises(CapabilityError):
            b.remove(0)

    def test_dynamic_backends_advertise_insert(self, rng):
        for e in DYNAMIC_ENGINES:
            b = build_backend(rng.uniform(size=(5, 2)), list(range(5)), e)
            assert b.supports_insert

    def test_unknown_engine_rejected(self, rng):
        from repro.errors import ConstructionError

        with pytest.raises(ConstructionError):
            build_backend(rng.uniform(size=(5, 2)), list(range(5)), "btree")

    def test_remove_semantics_aligned(self, rng):
        """Both dynamic backends: removing a deactivated point works,
        double-remove and unknown-id remove raise KeyError."""
        for e in DYNAMIC_ENGINES:
            b = build_backend(rng.uniform(size=(6, 2)), list(range(6)), e)
            b.deactivate(2)
            b.remove(2)  # removal of a hidden point is legitimate
            assert sorted(b.report(QueryBox.unbounded(2))) == [0, 1, 3, 4, 5]
            with pytest.raises(KeyError):
                b.remove(2)
            with pytest.raises(KeyError):
                b.remove("ghost")
