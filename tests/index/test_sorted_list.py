"""Unit and property tests for SortedListIndex (the 1-d range tree)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry.interval import Interval
from repro.index.sorted_list import SortedListIndex

values = st.lists(st.floats(-100, 100, allow_nan=False), min_size=1, max_size=50)


class TestBasics:
    def test_report_sorted_by_value(self):
        sl = SortedListIndex([0.5, 0.1, 0.9], ids=["mid", "lo", "hi"])
        assert sl.report(Interval.everything()) == ["lo", "mid", "hi"]

    def test_report_interval(self):
        sl = SortedListIndex([0.1, 0.5, 0.9])
        assert sl.report(Interval(0.2, 0.95)) == [1, 2]

    def test_open_endpoints(self):
        sl = SortedListIndex([0.1, 0.5, 0.9])
        assert sl.report(Interval(0.1, 0.9, lo_open=True, hi_open=True)) == [1]

    def test_count(self):
        sl = SortedListIndex([0.1, 0.5, 0.9])
        assert sl.count(Interval(0.0, 0.6)) == 2

    def test_report_first(self):
        sl = SortedListIndex([0.1, 0.5, 0.9])
        assert sl.report_first(Interval(0.4, 1.0)) == 1
        assert sl.report_first(Interval(2.0, 3.0)) is None

    def test_duplicate_values_all_reported(self):
        sl = SortedListIndex([0.5, 0.5, 0.5])
        assert sorted(sl.report(Interval(0.5, 0.5))) == [0, 1, 2]

    def test_unique_ids_enforced(self):
        with pytest.raises(ValueError):
            SortedListIndex([1.0, 2.0], ids=["a", "a"])

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            SortedListIndex([1.0], ids=["a", "b"])

    def test_values_of(self):
        sl = SortedListIndex([3.0, 1.0], ids=["x", "y"])
        assert sl.values_of("x") == 3.0


class TestActivation:
    def test_deactivate_hides(self):
        sl = SortedListIndex([0.1, 0.5, 0.9])
        sl.deactivate(1)
        assert sl.report(Interval.everything()) == [0, 2]
        assert sl.count(Interval.everything()) == 2
        assert sl.n_active == 2

    def test_activate_restores(self):
        sl = SortedListIndex([0.1, 0.5])
        sl.deactivate(0)
        sl.activate(0)
        assert sl.report(Interval.everything()) == [0, 1]

    def test_double_deactivate_raises(self):
        sl = SortedListIndex([0.1])
        sl.deactivate(0)
        with pytest.raises(KeyError):
            sl.deactivate(0)

    def test_double_activate_raises(self):
        sl = SortedListIndex([0.1])
        with pytest.raises(KeyError):
            sl.activate(0)

    def test_is_active(self):
        sl = SortedListIndex([0.1])
        assert sl.is_active(0)
        sl.deactivate(0)
        assert not sl.is_active(0)

    def test_report_first_skips_inactive(self):
        sl = SortedListIndex([0.1, 0.2, 0.3])
        sl.deactivate(0)
        assert sl.report_first(Interval(0.0, 1.0)) == 1


class TestPropertyBased:
    @settings(max_examples=60, deadline=None)
    @given(vals=values, a=st.floats(-100, 100), b=st.floats(-100, 100))
    def test_report_matches_naive(self, vals, a, b):
        lo, hi = min(a, b), max(a, b)
        sl = SortedListIndex(vals)
        iv = Interval(lo, hi)
        expected = sorted(i for i, v in enumerate(vals) if lo <= v <= hi)
        assert sorted(sl.report(iv)) == expected
        assert sl.count(iv) == len(expected)

    @settings(max_examples=40, deadline=None)
    @given(
        vals=values,
        kill=st.sets(st.integers(0, 49)),
        a=st.floats(-100, 100),
        b=st.floats(-100, 100),
    )
    def test_activation_matches_naive(self, vals, kill, a, b):
        lo, hi = min(a, b), max(a, b)
        sl = SortedListIndex(vals)
        killed = {k for k in kill if k < len(vals)}
        for k in killed:
            sl.deactivate(k)
        expected = sorted(
            i for i, v in enumerate(vals) if lo <= v <= hi and i not in killed
        )
        assert sorted(sl.report(Interval(lo, hi))) == expected
        first = sl.report_first(Interval(lo, hi))
        assert (first is None) == (not expected)
        if expected:
            assert first in expected

    def test_iter_report_is_lazy_equal(self):
        sl = SortedListIndex([0.3, 0.1, 0.2])
        assert list(sl.iter_report(Interval(0.0, 1.0))) == sl.report(Interval(0.0, 1.0))
