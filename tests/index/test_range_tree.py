"""Tests for the classic multi-level RangeTree."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.index.query_box import QueryBox
from repro.index.range_tree import RangeTree


def naive_report(points, box):
    return sorted(np.nonzero(box.contains_points(points))[0].tolist())


class TestBasics:
    def test_1d(self):
        rt = RangeTree(np.array([[0.0], [1.0], [2.0]]))
        assert sorted(rt.report(QueryBox.closed([0.5], [2.5]))) == [1, 2]

    def test_2d(self, rng):
        pts = rng.uniform(size=(100, 2))
        rt = RangeTree(pts)
        box = QueryBox.closed([0.2, 0.2], [0.7, 0.7])
        assert sorted(rt.report(box)) == naive_report(pts, box)

    def test_3d(self, rng):
        pts = rng.uniform(size=(60, 3))
        rt = RangeTree(pts)
        box = QueryBox.closed([0.1, 0.1, 0.1], [0.8, 0.8, 0.8])
        assert sorted(rt.report(box)) == naive_report(pts, box)

    def test_count(self, rng):
        pts = rng.uniform(size=(80, 2))
        rt = RangeTree(pts)
        box = QueryBox.closed([0.0, 0.0], [0.5, 0.5])
        assert rt.count(box) == len(naive_report(pts, box))

    def test_report_first_in_truth(self, rng):
        pts = rng.uniform(size=(80, 2))
        rt = RangeTree(pts)
        box = QueryBox.closed([0.3, 0.3], [0.6, 0.6])
        truth = naive_report(pts, box)
        first = rt.report_first(box)
        assert (first is None) == (not truth)
        if truth:
            assert first in truth

    def test_custom_ids(self):
        rt = RangeTree(np.array([[0.0], [1.0]]), ids=["a", "b"])
        assert rt.report(QueryBox.closed([0.5], [1.5])) == ["b"]

    def test_dim_mismatch_raises(self):
        rt = RangeTree(np.array([[0.0, 0.0]]))
        with pytest.raises(ValueError):
            rt.report(QueryBox.closed([0.0], [1.0]))

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError):
            RangeTree(np.zeros((2, 1)), ids=["x", "x"])

    def test_open_bounds(self):
        pts = np.array([[0.0, 0.0], [1.0, 1.0]])
        rt = RangeTree(pts)
        box = QueryBox([(0.0, 1.0, True, True), (-1.0, 2.0, False, False)])
        assert rt.report(box) == []


class TestActivation:
    def test_deactivate_then_activate(self, rng):
        pts = rng.uniform(size=(50, 2))
        rt = RangeTree(pts)
        box = QueryBox.closed([0.0, 0.0], [1.0, 1.0])
        truth = naive_report(pts, box)
        rt.deactivate(truth[0])
        assert sorted(rt.report(box)) == truth[1:]
        rt.activate(truth[0])
        assert sorted(rt.report(box)) == truth

    def test_deactivate_all(self, rng):
        pts = rng.uniform(size=(10, 2))
        rt = RangeTree(pts)
        for i in range(10):
            rt.deactivate(i)
        box = QueryBox.closed([0.0, 0.0], [1.0, 1.0])
        assert rt.report(box) == []
        assert rt.report_first(box) is None
        assert rt.count(box) == 0


class TestPropertyBased:
    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        n=st.integers(1, 60),
        dim=st.integers(1, 3),
    )
    def test_report_matches_naive(self, seed, n, dim):
        rng = np.random.default_rng(seed)
        pts = rng.uniform(size=(n, dim))
        rt = RangeTree(pts)
        lo = rng.uniform(0, 1, size=dim)
        hi = rng.uniform(0, 1, size=dim)
        lo, hi = np.minimum(lo, hi), np.maximum(lo, hi)
        box = QueryBox.closed(lo, hi)
        assert sorted(rt.report(box)) == naive_report(pts, box)
        assert rt.count(box) == len(naive_report(pts, box))

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_open_bounds_match_naive(self, seed):
        rng = np.random.default_rng(seed)
        # Grid-valued points so open/closed bounds actually matter.
        pts = rng.integers(0, 4, size=(40, 2)).astype(float)
        rt = RangeTree(pts)
        cons = []
        for _ in range(2):
            a, b = sorted(rng.integers(0, 4, size=2).tolist())
            cons.append((float(a), float(b), bool(rng.integers(2)), bool(rng.integers(2))))
        box = QueryBox(cons)
        assert sorted(rt.report(box)) == naive_report(pts, box)
