"""Unit and property tests for the Fenwick tree."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.index.fenwick import FenwickTree


class TestBasics:
    def test_all_ones_prefix(self):
        ft = FenwickTree.all_ones(10)
        assert [ft.prefix_sum(i) for i in range(11)] == list(range(11))

    def test_add_and_range_sum(self):
        ft = FenwickTree(5)
        ft.add(2, 3)
        ft.add(4, 1)
        assert ft.range_sum(0, 5) == 4
        assert ft.range_sum(3, 5) == 1

    def test_empty_range(self):
        ft = FenwickTree.all_ones(5)
        assert ft.range_sum(3, 3) == 0
        assert ft.range_sum(4, 2) == 0

    def test_index_bounds(self):
        ft = FenwickTree(3)
        with pytest.raises(IndexError):
            ft.add(3, 1)
        with pytest.raises(IndexError):
            ft.prefix_sum(4)

    def test_zero_size(self):
        ft = FenwickTree(0)
        assert ft.prefix_sum(0) == 0

    def test_rejects_negative_size(self):
        with pytest.raises(ValueError):
            FenwickTree(-1)


class TestFindFirstPositive:
    def test_all_active(self):
        ft = FenwickTree.all_ones(8)
        assert ft.find_first_positive(0, 8) == 0
        assert ft.find_first_positive(3, 8) == 3

    def test_skips_deactivated(self):
        ft = FenwickTree.all_ones(8)
        for i in (0, 1, 2, 5):
            ft.add(i, -1)
        assert ft.find_first_positive(0, 8) == 3
        assert ft.find_first_positive(4, 8) == 4
        assert ft.find_first_positive(5, 6) == 6  # none in [5, 6)

    def test_none_active_returns_hi(self):
        ft = FenwickTree(4)
        assert ft.find_first_positive(0, 4) == 4

    @settings(max_examples=50, deadline=None)
    @given(
        flags=st.lists(st.booleans(), min_size=1, max_size=64),
        lo_frac=st.floats(0, 1),
        hi_frac=st.floats(0, 1),
    )
    def test_matches_naive(self, flags, lo_frac, hi_frac):
        n = len(flags)
        lo = int(lo_frac * n)
        hi = int(hi_frac * n)
        if lo > hi:
            lo, hi = hi, lo
        ft = FenwickTree(n)
        for i, f in enumerate(flags):
            if f:
                ft.add(i, 1)
        naive = next((i for i in range(lo, hi) if flags[i]), hi)
        assert ft.find_first_positive(lo, hi) == naive

    @settings(max_examples=50, deadline=None)
    @given(
        values=st.lists(st.integers(0, 5), min_size=1, max_size=40),
        lo_frac=st.floats(0, 1),
        hi_frac=st.floats(0, 1),
    )
    def test_range_sum_matches_naive(self, values, lo_frac, hi_frac):
        n = len(values)
        lo = int(lo_frac * n)
        hi = int(hi_frac * n)
        if lo > hi:
            lo, hi = hi, lo
        ft = FenwickTree(n)
        for i, v in enumerate(values):
            ft.add(i, v)
        assert ft.range_sum(lo, hi) == sum(values[lo:hi])
