"""Tests for the halfspace-reporting → CPref reduction (Thm 3.5)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.pref_index import PrefIndex
from repro.errors import ConstructionError
from repro.lowerbounds.halfspace import (
    halfspace_report_brute_force,
    halfspace_report_via_cpref,
    normalize_to_unit_ball,
    translate_to_first_orthant,
)
from repro.synopsis.exact import ExactSynopsis


class TestNormalization:
    def test_unit_ball(self, rng):
        pts = rng.normal(size=(100, 3)) * 5
        scaled, scale = normalize_to_unit_ball(pts)
        assert np.linalg.norm(scaled, axis=1).max() <= 1.0 + 1e-12
        assert np.allclose(scaled * scale, pts)

    def test_membership_preserved_by_scaling(self, rng):
        pts = rng.normal(size=(50, 2)) * 3
        v = rng.normal(size=2)
        tau = 0.7
        scaled, scale = normalize_to_unit_ball(pts)
        before = halfspace_report_brute_force(pts, v, tau)
        after = halfspace_report_brute_force(scaled, v, tau / scale)
        assert before == after

    def test_first_orthant(self, rng):
        pts = rng.normal(size=(40, 4))
        moved, shift = translate_to_first_orthant(pts)
        assert moved.min() >= 0.0
        assert np.allclose(moved - shift, pts)

    def test_membership_preserved_by_translation(self, rng):
        pts = rng.normal(size=(40, 2))
        v = rng.normal(size=2)
        tau = 0.2
        moved, shift = translate_to_first_orthant(pts)
        before = halfspace_report_brute_force(pts, v, tau)
        norm = np.linalg.norm(v)
        after = halfspace_report_brute_force(moved, v, tau + float(shift @ v / norm) * norm)
        assert before == after


class TestReduction:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000), dim=st.integers(2, 5))
    def test_default_oracle_exact(self, seed, dim):
        rng = np.random.default_rng(seed)
        pts = rng.normal(size=(60, dim))
        v = rng.normal(size=dim)
        tau = float(rng.normal())
        got = halfspace_report_via_cpref(pts, v, tau)
        assert got == halfspace_report_brute_force(pts, v, tau)

    def test_through_approximate_pref_index(self, rng):
        """Our Pref structure answers the reduction within its eps slack."""
        pts, _ = normalize_to_unit_ball(rng.normal(size=(40, 2)))
        index = PrefIndex([ExactSynopsis(p.reshape(1, 2)) for p in pts], k=1, eps=0.05)

        def oracle(unit, k, a):
            return index.query(unit, a).index_set

        v = np.array([0.6, 0.8])
        tau = 0.2
        exact = halfspace_report_brute_force(pts, v, tau)
        approx = halfspace_report_via_cpref(pts, v, tau, cpref_query=oracle)
        assert exact <= approx  # full recall
        # False positives only within the 2*eps margin.
        proj = pts @ v
        for i in approx - exact:
            assert proj[i] >= tau - 2 * 0.05 - 1e-9

    def test_zero_normal_rejected(self, rng):
        with pytest.raises(ConstructionError):
            halfspace_report_via_cpref(rng.normal(size=(5, 2)), np.zeros(2), 0.0)
