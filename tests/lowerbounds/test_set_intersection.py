"""Tests for the set-intersection → CPtile reduction (Fig. 4, Thm 3.4)."""

from collections import Counter

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.ptile_exact_1d import ExactPtile1DIndex  # noqa: F401 (engine demo elsewhere)
from repro.errors import ConstructionError
from repro.lowerbounds.set_intersection import (
    intersect_via_cptile,
    intersection_query_rectangle,
    intersection_theta,
    make_uniform_instance,
)


class TestUniformInstance:
    def test_uniformity(self, rng):
        inst = make_uniform_instance(8, 10, 4, rng)
        counts = Counter(u for s in inst.sets for u in s)
        assert set(counts.values()) == {4}
        assert all(len(s) == 10 for s in inst.sets)
        assert inst.universe_size == 8 * 10 // 4

    def test_all_datasets_equal_size(self, rng):
        inst = make_uniform_instance(6, 6, 3, rng)
        assert {d.shape[0] for d in inst.datasets} == {inst.points_per_dataset}

    def test_points_on_two_lines(self, rng):
        inst = make_uniform_instance(5, 4, 2, rng)
        big_m = inst.total_size
        for d in inst.datasets:
            on_l = d[d[:, 0] < 0]
            on_lp = d[d[:, 0] > 0]
            assert np.allclose(on_l[:, 1], on_l[:, 0] + big_m)
            assert np.allclose(on_lp[:, 1], on_lp[:, 0] - big_m)

    def test_divisibility_checked(self, rng):
        with pytest.raises(ConstructionError):
            make_uniform_instance(3, 5, 2, rng)

    def test_occurrences_bounded(self, rng):
        with pytest.raises(ConstructionError):
            make_uniform_instance(2, 4, 4, rng)


class TestReduction:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_reduction_is_exact_everywhere(self, seed):
        rng = np.random.default_rng(seed)
        inst = make_uniform_instance(6, 8, 3, rng)
        for i in range(inst.n_sets):
            for j in range(inst.n_sets):
                assert intersect_via_cptile(inst, i, j) == inst.brute_force_intersection(i, j)

    def test_rectangle_isolates_gi_gpj(self, rng):
        """rho_{i,j} ∩ H = G_i ∪ G'_j: exactly |S_i| + |S_j| points total."""
        inst = make_uniform_instance(6, 8, 3, rng)
        rect = intersection_query_rectangle(inst, 2, 4)
        total = sum(rect.count_inside(d) for d in inst.datasets)
        assert total == len(inst.sets[2]) + len(inst.sets[4])

    def test_theta_certifies_double_hits(self, rng):
        inst = make_uniform_instance(4, 4, 2, rng)
        theta = intersection_theta(inst)
        t = inst.points_per_dataset
        assert 2 / t in theta and 1 / t not in theta and 0.0 not in theta

    def test_custom_oracle_is_used(self, rng):
        inst = make_uniform_instance(4, 4, 2, rng)
        calls = []

        def oracle(rect, theta):
            calls.append((rect, theta))
            out = set()
            for u, pts in enumerate(inst.datasets):
                if rect.count_inside(pts) / pts.shape[0] in theta:
                    out.add(u)
            return out

        got = intersect_via_cptile(inst, 0, 1, cptile_query=oracle)
        assert calls and got == inst.brute_force_intersection(0, 1)

    def test_self_intersection(self, rng):
        inst = make_uniform_instance(5, 4, 2, rng)
        assert intersect_via_cptile(inst, 3, 3) == inst.sets[3]

    def test_index_bounds_checked(self, rng):
        inst = make_uniform_instance(4, 4, 2, rng)
        with pytest.raises(ConstructionError):
            intersection_query_rectangle(inst, 0, 9)
