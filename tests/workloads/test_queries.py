"""Tests for the query workload generators."""

import numpy as np
import pytest

from repro.core.measures import PercentileMeasure, PreferenceMeasure
from repro.core.predicates import Predicate
from repro.errors import ConstructionError
from repro.geometry.rectangle import Rectangle
from repro.workloads.queries import (
    batched_query_workload,
    random_rectangles,
    random_unit_vectors,
    threshold_grid,
)


class TestRectangles:
    def test_inside_ambient(self, rng):
        ambient = Rectangle([1.0, 2.0], [3.0, 5.0])
        rects = random_rectangles(20, 2, rng, ambient=ambient)
        assert len(rects) == 20
        for r in rects:
            assert r.contained_in(ambient)

    def test_extent_bounds(self, rng):
        rects = random_rectangles(50, 1, rng, min_extent=0.2, max_extent=0.3)
        for r in rects:
            extent = r.hi[0] - r.lo[0]
            assert 0.2 - 1e-9 <= extent <= 0.3 + 1e-9

    def test_validation(self, rng):
        with pytest.raises(ConstructionError):
            random_rectangles(0, 2, rng)
        with pytest.raises(ConstructionError):
            random_rectangles(5, 2, rng, min_extent=0.5, max_extent=0.1)


class TestVectors:
    def test_unit_norm(self, rng):
        vs = random_unit_vectors(30, 4, rng)
        assert vs.shape == (30, 4)
        assert np.allclose(np.linalg.norm(vs, axis=1), 1.0)

    def test_validation(self, rng):
        with pytest.raises(ConstructionError):
            random_unit_vectors(0, 2, rng)


class TestThresholds:
    def test_grid(self):
        g = threshold_grid(0.1, 0.9, 5)
        assert g[0] == 0.1 and g[-1] == 0.9 and len(g) == 5

    def test_validation(self):
        with pytest.raises(ConstructionError):
            threshold_grid(0.0, 1.0, 0)


def _leaf_keys(expressions):
    return [leaf.canonical_key() for e in expressions for leaf in e.leaves()]


class TestBatchedWorkload:
    def test_shapes_and_leaf_mix(self, rng):
        batch = batched_query_workload(
            40, 2, rng, pref_fraction=0.5, duplicate_leaf_rate=0.3, max_leaves=4
        )
        assert len(batch) == 40
        kinds = set()
        for expr in batch:
            leaves = list(expr.leaves())
            assert 1 <= len(leaves) <= 4
            for leaf in leaves:
                assert isinstance(leaf, Predicate)
                kinds.add(type(leaf.measure))
        assert kinds == {PercentileMeasure, PreferenceMeasure}

    def test_duplicate_rate_controls_sharing(self):
        dup = batched_query_workload(
            60, 1, np.random.default_rng(3), duplicate_leaf_rate=0.9, max_leaves=3
        )
        fresh = batched_query_workload(
            60, 1, np.random.default_rng(3), duplicate_leaf_rate=0.0, max_leaves=3
        )
        dup_keys = _leaf_keys(dup)
        fresh_keys = _leaf_keys(fresh)
        assert len(set(dup_keys)) < len(dup_keys)          # heavy reuse
        assert len(set(fresh_keys)) == len(fresh_keys)     # all distinct
        assert len(set(dup_keys)) < len(set(fresh_keys))

    def test_deterministic_given_seed(self):
        a = batched_query_workload(10, 2, np.random.default_rng(5))
        b = batched_query_workload(10, 2, np.random.default_rng(5))
        assert [e.canonical_key() for e in a] == [e.canonical_key() for e in b]

    def test_validation(self, rng):
        with pytest.raises(ConstructionError):
            batched_query_workload(0, 2, rng)
        with pytest.raises(ConstructionError):
            batched_query_workload(5, 2, rng, duplicate_leaf_rate=1.5)
        with pytest.raises(ConstructionError):
            batched_query_workload(5, 2, rng, max_leaves=0)
