"""Tests for the query workload generators."""

import numpy as np
import pytest

from repro.errors import ConstructionError
from repro.geometry.rectangle import Rectangle
from repro.workloads.queries import (
    random_rectangles,
    random_unit_vectors,
    threshold_grid,
)


class TestRectangles:
    def test_inside_ambient(self, rng):
        ambient = Rectangle([1.0, 2.0], [3.0, 5.0])
        rects = random_rectangles(20, 2, rng, ambient=ambient)
        assert len(rects) == 20
        for r in rects:
            assert r.contained_in(ambient)

    def test_extent_bounds(self, rng):
        rects = random_rectangles(50, 1, rng, min_extent=0.2, max_extent=0.3)
        for r in rects:
            extent = r.hi[0] - r.lo[0]
            assert 0.2 - 1e-9 <= extent <= 0.3 + 1e-9

    def test_validation(self, rng):
        with pytest.raises(ConstructionError):
            random_rectangles(0, 2, rng)
        with pytest.raises(ConstructionError):
            random_rectangles(5, 2, rng, min_extent=0.5, max_extent=0.1)


class TestVectors:
    def test_unit_norm(self, rng):
        vs = random_unit_vectors(30, 4, rng)
        assert vs.shape == (30, 4)
        assert np.allclose(np.linalg.norm(vs, axis=1), 1.0)

    def test_validation(self, rng):
        with pytest.raises(ConstructionError):
            random_unit_vectors(0, 2, rng)


class TestThresholds:
    def test_grid(self):
        g = threshold_grid(0.1, 0.9, 5)
        assert g[0] == 0.1 and g[-1] == 0.9 and len(g) == 5

    def test_validation(self):
        with pytest.raises(ConstructionError):
            threshold_grid(0.0, 1.0, 0)
