"""Tests for the Example-1.1 open-data workloads."""

import numpy as np
import pytest

from repro.errors import ConstructionError
from repro.workloads.opendata import (
    BROOKLYN_REGION,
    QUALITY_SCHEMA,
    city_incident_repository,
    city_quality_repository,
)


class TestIncidentRepository:
    def test_fractions_are_exact(self, rng):
        repo, fractions = city_incident_repository(10, rng)
        for ds, frac in zip(repo, fractions):
            measured = BROOKLYN_REGION.count_inside(ds.points) / ds.size
            assert measured == pytest.approx(frac)

    def test_schema_and_range(self, rng):
        repo, _ = city_incident_repository(5, rng)
        assert repo.schema == ("lon", "lat")
        for ds in repo:
            assert ds.points.min() >= 0.0 and ds.points.max() <= 1.0

    def test_explicit_fractions(self, rng):
        target = np.array([0.0, 0.25, 0.5])
        repo, fractions = city_incident_repository(
            3, rng, brooklyn_fractions=target
        )
        # Rounding to integer counts only: within 1/n of the target.
        for ds, want, got in zip(repo, target, fractions):
            assert abs(got - want) <= 1.0 / ds.size + 1e-12

    def test_validation(self, rng):
        with pytest.raises(ConstructionError):
            city_incident_repository(0, rng)
        with pytest.raises(ConstructionError):
            city_incident_repository(3, rng, brooklyn_fractions=np.array([0.5]))


class TestQualityRepository:
    def test_schema(self, rng):
        repo = city_quality_repository(6, rng)
        assert repo.schema == QUALITY_SCHEMA
        assert repo.n_datasets == 6

    def test_values_in_unit_interval(self, rng):
        repo = city_quality_repository(4, rng)
        for ds in repo:
            assert ds.points.min() >= 0.0 and ds.points.max() <= 1.0

    def test_neighborhood_counts(self, rng):
        repo = city_quality_repository(8, rng, min_neighborhoods=5, max_neighborhoods=9)
        for ds in repo:
            assert 5 <= ds.size <= 9

    def test_cities_differ_in_quality(self, rng):
        """Top-k preference queries must meaningfully separate cities."""
        repo = city_quality_repository(20, rng)
        w = np.ones(4) / 2.0
        scores = [ds.kth_score(w, 3) for ds in repo]
        assert np.std(scores) > 0.02

    def test_validation(self, rng):
        with pytest.raises(ConstructionError):
            city_quality_repository(0, rng)
        with pytest.raises(ConstructionError):
            city_quality_repository(3, rng, min_neighborhoods=9, max_neighborhoods=5)
