"""Tests for the synthetic data-lake generators."""

import numpy as np
import pytest

from repro.errors import ConstructionError
from repro.geometry.rectangle import Rectangle
from repro.workloads.generators import (
    FAMILIES,
    dataset_with_mass,
    lognormal_sizes,
    synthetic_data_lake,
)


class TestSizes:
    def test_lognormal_minimum(self, rng):
        sizes = lognormal_sizes(100, median=50, sigma=1.5, rng=rng)
        assert sizes.min() >= 8 and len(sizes) == 100

    def test_median_roughly_respected(self, rng):
        sizes = lognormal_sizes(2000, median=100, sigma=0.5, rng=rng)
        assert 70 <= np.median(sizes) <= 140

    def test_validation(self, rng):
        with pytest.raises(ConstructionError):
            lognormal_sizes(0, 10, 1.0, rng)


class TestLake:
    @pytest.mark.parametrize("family", FAMILIES)
    def test_families_produce_valid_data(self, family, rng):
        lake = synthetic_data_lake(6, 2, rng, family=family, median_size=100)
        assert len(lake) == 6
        for d in lake:
            assert d.shape[1] == 2
            assert d.min() >= 0.0 and d.max() <= 1.0

    def test_explicit_sizes(self, rng):
        lake = synthetic_data_lake(3, 1, rng, sizes=[10, 20, 30])
        assert [d.shape[0] for d in lake] == [10, 20, 30]

    def test_sizes_length_checked(self, rng):
        with pytest.raises(ConstructionError):
            synthetic_data_lake(3, 1, rng, sizes=[10])

    def test_unknown_family(self, rng):
        with pytest.raises(ConstructionError):
            synthetic_data_lake(3, 1, rng, family="fractal")

    def test_clustered_datasets_differ(self, rng):
        lake = synthetic_data_lake(2, 2, rng, family="clustered", median_size=500)
        assert not np.allclose(lake[0].mean(axis=0), lake[1].mean(axis=0), atol=1e-3)


class TestDatasetWithMass:
    @pytest.mark.parametrize("mass", [0.0, 0.13, 0.5, 1.0])
    def test_exact_mass(self, mass, rng):
        rect = Rectangle([0.2, 0.2], [0.5, 0.5])
        pts = dataset_with_mass(200, rect, mass, rng)
        assert rect.count_inside(pts) == int(round(mass * 200))
        assert pts.shape == (200, 2)

    def test_points_in_ambient(self, rng):
        rect = Rectangle([0.1], [0.3])
        ambient = Rectangle([0.0], [2.0])
        pts = dataset_with_mass(100, rect, 0.4, rng, ambient=ambient)
        assert ambient.contains_points(pts).all()

    def test_rect_must_be_inside_ambient(self, rng):
        with pytest.raises(ConstructionError):
            dataset_with_mass(10, Rectangle([0.0], [2.0]), 0.5, rng)

    def test_bad_mass(self, rng):
        with pytest.raises(ConstructionError):
            dataset_with_mass(10, Rectangle([0.1], [0.2]), 1.5, rng)
