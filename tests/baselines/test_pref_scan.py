"""Tests for the exact linear-scan Pref baseline."""

import numpy as np
import pytest

from repro.baselines.pref_scan import LinearScanPref
from repro.errors import ConstructionError, QueryError


@pytest.fixture
def lake(rng):
    return [rng.normal(size=(80, 3)) for _ in range(6)]


class TestExactness:
    def test_matches_direct(self, lake, rng):
        base = LinearScanPref(lake)
        for _ in range(5):
            v = rng.normal(size=3)
            v /= np.linalg.norm(v)
            k = int(rng.integers(1, 40))
            a = float(rng.normal())
            expected = [
                i for i, d in enumerate(lake) if np.sort(d @ v)[80 - k] >= a
            ]
            assert base.query(v, k, a).indexes == expected

    def test_score(self, lake):
        base = LinearScanPref(lake)
        v = np.array([1.0, 0.0, 0.0])
        assert base.score(0, v, 1) == pytest.approx(lake[0][:, 0].max())

    def test_k_beyond_size(self, lake):
        base = LinearScanPref(lake)
        assert base.score(0, np.array([1.0, 0.0, 0.0]), 100) == float("-inf")

    def test_vector_normalized(self, lake):
        base = LinearScanPref(lake)
        a = base.query(np.array([2.0, 0.0, 0.0]), 3, 0.5).indexes
        b = base.query(np.array([1.0, 0.0, 0.0]), 3, 0.5).indexes
        assert a == b


class TestValidation:
    def test_empty(self):
        with pytest.raises(ConstructionError):
            LinearScanPref([])

    def test_zero_vector(self, lake):
        with pytest.raises(QueryError):
            LinearScanPref(lake).query(np.zeros(3), 1, 0.0)

    def test_bad_k(self, lake):
        with pytest.raises(QueryError):
            LinearScanPref(lake).query(np.ones(3), 0, 0.0)

    def test_bad_shape(self, lake):
        with pytest.raises(QueryError):
            LinearScanPref(lake).query(np.ones(2), 1, 0.0)
