"""Tests for the exact linear-scan Ptile baseline."""

import pytest

from repro.baselines.linear_scan import LinearScanPtile
from repro.errors import ConstructionError, QueryError
from repro.geometry.interval import Interval
from repro.geometry.rectangle import Rectangle


@pytest.fixture
def lake(rng):
    return [rng.uniform(size=(100, 2)) for _ in range(8)]


class TestExactness:
    @pytest.mark.parametrize("mode", ["tree", "numpy"])
    def test_matches_direct_counting(self, lake, mode, rng):
        base = LinearScanPtile(lake, mode=mode)
        for _ in range(5):
            lo = rng.uniform(0, 0.5, size=2)
            hi = lo + rng.uniform(0.1, 0.5, size=2)
            rect = Rectangle(lo, hi)
            theta = Interval(0.1, 0.6)
            expected = [
                i
                for i, d in enumerate(lake)
                if rect.count_inside(d) / d.shape[0] in theta
            ]
            assert base.query(rect, theta).indexes == expected

    def test_modes_agree(self, lake):
        rect = Rectangle([0.2, 0.2], [0.8, 0.8])
        theta = Interval(0.3, 1.0)
        a = LinearScanPtile(lake, mode="tree").query(rect, theta).indexes
        b = LinearScanPtile(lake, mode="numpy").query(rect, theta).indexes
        assert a == b

    def test_mass(self, lake):
        base = LinearScanPtile(lake)
        rect = Rectangle([0.0, 0.0], [1.0, 1.0])
        assert base.mass(0, rect) == pytest.approx(1.0)

    def test_conjunction(self, lake):
        base = LinearScanPtile(lake, mode="numpy")
        r1 = Rectangle([0.0, 0.0], [0.5, 1.0])
        r2 = Rectangle([0.5, 0.0], [1.0, 1.0])
        got = base.query_conjunction(
            [r1, r2], [Interval(0.3, 0.7), Interval(0.3, 0.7)]
        ).indexes
        expected = [
            i
            for i, d in enumerate(lake)
            if r1.count_inside(d) / 100 in Interval(0.3, 0.7)
            and r2.count_inside(d) / 100 in Interval(0.3, 0.7)
        ]
        assert got == expected


class TestValidation:
    def test_empty_rejected(self):
        with pytest.raises(ConstructionError):
            LinearScanPtile([])

    def test_mixed_dims_rejected(self, rng):
        with pytest.raises(ConstructionError):
            LinearScanPtile([rng.uniform(size=(5, 1)), rng.uniform(size=(5, 2))])

    def test_unknown_mode(self, lake):
        with pytest.raises(ConstructionError):
            LinearScanPtile(lake, mode="gpu")

    def test_query_dim_mismatch(self, lake):
        base = LinearScanPtile(lake)
        with pytest.raises(QueryError):
            base.query(Rectangle([0.0], [1.0]), Interval(0.0, 1.0))

    def test_conjunction_arg_mismatch(self, lake):
        base = LinearScanPtile(lake)
        with pytest.raises(QueryError):
            base.query_conjunction([Rectangle([0, 0], [1, 1])], [])
