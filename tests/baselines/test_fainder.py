"""Tests for the Fainder-style histogram percentile baseline."""

import numpy as np
import pytest

from repro.baselines.fainder import FainderStyleIndex
from repro.errors import ConstructionError, QueryError


@pytest.fixture
def lake(rng):
    return [rng.uniform(size=(300, 2)) for _ in range(10)]


def exact_below(lake, attr, t, frac):
    return {i for i, d in enumerate(lake) if (d[:, attr] <= t).mean() >= frac}


def exact_above(lake, attr, t, frac):
    return {i for i, d in enumerate(lake) if (d[:, attr] > t).mean() >= frac}


class TestBracketing:
    """Fainder's over/under modes bracket the exact answer."""

    @pytest.mark.parametrize("t,frac", [(0.3, 0.2), (0.5, 0.5), (0.7, 0.8)])
    def test_below_queries(self, lake, t, frac):
        idx = FainderStyleIndex(lake, bins=16)
        under = idx.query(0, "below", t, frac, mode="under").index_set
        over = idx.query(0, "below", t, frac, mode="over").index_set
        exact = exact_below(lake, 0, t, frac)
        assert under <= exact <= over

    @pytest.mark.parametrize("t,frac", [(0.3, 0.5), (0.6, 0.3)])
    def test_above_queries(self, lake, t, frac):
        idx = FainderStyleIndex(lake, bins=16)
        under = idx.query(1, "above", t, frac, mode="under").index_set
        over = idx.query(1, "above", t, frac, mode="over").index_set
        exact = exact_above(lake, 1, t, frac)
        assert under <= exact <= over

    def test_interp_between_brackets(self, lake):
        idx = FainderStyleIndex(lake, bins=16)
        under = idx.query(0, "below", 0.5, 0.4, mode="under").index_set
        over = idx.query(0, "below", 0.5, 0.4, mode="over").index_set
        interp = idx.query(0, "below", 0.5, 0.4, mode="interp").index_set
        assert under <= interp <= over

    def test_more_bins_tighter_brackets(self, lake):
        coarse = FainderStyleIndex(lake, bins=4)
        fine = FainderStyleIndex(lake, bins=64)
        def gap(idx):
            over = idx.query(0, "below", 0.47, 0.42, mode="over").index_set
            under = idx.query(0, "below", 0.47, 0.42, mode="under").index_set
            return len(over - under)
        assert gap(fine) <= gap(coarse)


class TestEdges:
    def test_threshold_outside_range(self, lake):
        idx = FainderStyleIndex(lake)
        assert idx.query(0, "below", 2.0, 0.5).out_size == 10
        assert idx.query(0, "below", -1.0, 0.5).out_size == 0

    def test_capability_flags(self, lake):
        idx = FainderStyleIndex(lake)
        assert not idx.supports_rectangles()
        assert not idx.supports_two_sided()

    def test_constant_attribute(self):
        data = [np.column_stack([np.ones(50), np.arange(50.0)])]
        idx = FainderStyleIndex(data)
        # All mass sits in the first bin; only the recall-safe "over" mode
        # is guaranteed to report the dataset at its exact boundary.
        assert idx.query(0, "below", 1.0, 0.99, mode="over").out_size == 1
        assert idx.query(0, "below", 1.1, 0.99, mode="interp").out_size == 1


class TestValidation:
    def test_bad_attribute(self, lake):
        idx = FainderStyleIndex(lake)
        with pytest.raises(QueryError):
            idx.query(7, "below", 0.5, 0.5)

    def test_bad_op(self, lake):
        idx = FainderStyleIndex(lake)
        with pytest.raises(QueryError):
            idx.query(0, "between", 0.5, 0.5)

    def test_bad_mode(self, lake):
        idx = FainderStyleIndex(lake)
        with pytest.raises(QueryError):
            idx.query(0, "below", 0.5, 0.5, mode="exact")

    def test_bad_bins(self, lake):
        with pytest.raises(ConstructionError):
            FainderStyleIndex(lake, bins=1)

    def test_empty(self):
        with pytest.raises(ConstructionError):
            FainderStyleIndex([])
