"""FIG3 — the maximal-pair property (Lemmas 4.5/4.6) measured.

Paper artifact: Figure 3 illustrates that for any query rectangle R, the
stored pair (rho, rho_hat) matched by the orthant has rho equal to the
*maximal* coreset rectangle inside R, and that the pruned pair family
equals the paper's definition on all query-matchable pairs.

Run ``python benchmarks/bench_fig3_maximal_pairs.py`` for the table.
"""

from __future__ import annotations

import numpy as np

from repro.bench.harness import TableReporter
from repro.geometry.rect_enum import (
    RectangleGrid,
    enumerate_maximal_pairs,
    enumerate_maximal_pairs_naive,
)
from repro.geometry.rectangle import Rectangle
from repro.index.query_box import QueryBox
from repro.workloads.queries import random_rectangles


def check_instance(seed: int, n_samples: int, dim: int) -> dict:
    rng = np.random.default_rng(seed)
    pts = rng.uniform(0.15, 0.85, size=(n_samples, dim))
    box = Rectangle([0.0] * dim, [1.0] * dim)
    grid = RectangleGrid(pts, box)
    pruned = enumerate_maximal_pairs(grid)
    naive = enumerate_maximal_pairs_naive(grid, matchable_only=True)
    def key(p):
        return (tuple(p[0].lo), tuple(p[0].hi), tuple(p[1].lo), tuple(p[1].hi))

    agree = {key(p) for p in pruned} == {key(p) for p in naive}
    # For random queries, any matched pair's inner rect must be maximal.
    maximal_ok = True
    queries = random_rectangles(
        25, dim, rng, ambient=Rectangle([0.01] * dim, [0.99] * dim)
    )
    for q in queries:
        orthant = QueryBox(q.query_orthant_4d())
        matched = [
            (inner, outer)
            for inner, outer, _w in pruned
            if orthant.contains_point(inner.pair_to_point_4d(outer))
        ]
        for inner, _outer in matched:
            # No pruned-family rectangle strictly larger fits in q.
            for other_inner, _o, _w in pruned:
                if (
                    inner.contained_in(other_inner)
                    and inner != other_inner
                    and other_inner.contained_in(q)
                ):
                    maximal_ok = False
    return {
        "pruned": len(pruned),
        "naive_matchable": len(naive),
        "families_agree": agree,
        "matched_always_maximal": maximal_ok,
    }


def main() -> None:
    table = TableReporter(
        "FIG3: maximal-pair family checks",
        ["dim", "samples", "pruned pairs", "naive matchable", "agree", "maximality"],
    )
    for dim, n in ((1, 4), (1, 6), (2, 3), (2, 4)):
        for seed in (1, 2):
            r = check_instance(seed, n, dim)
            table.add_row(
                [
                    dim,
                    n,
                    r["pruned"],
                    r["naive_matchable"],
                    r["families_agree"],
                    r["matched_always_maximal"],
                ]
            )
            assert r["families_agree"] and r["matched_always_maximal"]
    table.print()
    print("FIG3 reproduced: pruned pairs == paper's matchable pairs; matched")
    print("inner rectangles are always maximal inside the query (Lemma 4.5).")


def test_fig3_pair_enumeration(benchmark):
    rng = np.random.default_rng(4)
    pts = rng.uniform(0.2, 0.8, size=(6, 1))
    box = Rectangle([0.0], [1.0])
    grid = RectangleGrid(pts, box)
    pairs = benchmark(lambda: enumerate_maximal_pairs(grid))
    assert pairs


if __name__ == "__main__":
    main()
