"""T-DYN — the dynamism remarks: synopsis insert/delete vs full rebuild.

Paper artifact: Remarks after Theorems 4.4/4.11/5.4 — the structures
support ~O(1)-per-mapped-point updates on synopsis insertion/deletion.  We
measure insert/delete cost against a full rebuild and verify correctness
after churn.

Run ``python benchmarks/bench_dynamic_updates.py`` for the table.
"""

from __future__ import annotations

import time

import numpy as np

from repro.bench.harness import TableReporter, time_callable
from repro.core.ptile_range import PtileRangeIndex
from repro.core.ptile_threshold import PtileThresholdIndex
from repro.core.pref_index import PrefIndex
from repro.geometry.interval import Interval
from repro.geometry.rectangle import Rectangle
from repro.synopsis.exact import ExactSynopsis
from repro.workloads.generators import synthetic_data_lake

QUERY = Rectangle([0.0], [0.5])
SAMPLE = 16


def measure_ptile(kind: str, n: int, seed: int) -> dict:
    rng = np.random.default_rng(seed)
    lake = synthetic_data_lake(n, 1, rng, median_size=400, size_sigma=0.3)
    syns = [ExactSynopsis(p) for p in lake]
    cls = PtileThresholdIndex if kind == "threshold" else PtileRangeIndex
    build = time_callable(
        lambda: cls(syns, eps=0.15, sample_size=SAMPLE, rng=np.random.default_rng(1)),
        repeats=1,
    )
    index = cls(syns, eps=0.15, sample_size=SAMPLE, rng=np.random.default_rng(1))
    extra = ExactSynopsis(rng.uniform(0.0, 0.5, size=(200, 1)))
    start = time.perf_counter()
    key = index.insert_synopsis(extra)
    insert_t = time.perf_counter() - start
    if kind == "threshold":
        assert key in index.query(QUERY, 0.8).index_set
    else:
        assert key in index.query(QUERY, Interval(0.8, 1.0)).index_set
    start = time.perf_counter()
    index.delete_synopsis(key)
    delete_t = time.perf_counter() - start
    return {"build": build, "insert": insert_t, "delete": delete_t}


def measure_pref(n: int, seed: int) -> dict:
    rng = np.random.default_rng(seed)
    lake = synthetic_data_lake(n, 2, rng, median_size=300, size_sigma=0.3)
    syns = [ExactSynopsis(p) for p in lake]
    build = time_callable(lambda: PrefIndex(syns, k=3, eps=0.2), repeats=1)
    index = PrefIndex(syns, k=3, eps=0.2)
    extra = ExactSynopsis(rng.uniform(0.0, 1.0, size=(200, 2)))
    start = time.perf_counter()
    key = index.insert_synopsis(extra)
    insert_t = time.perf_counter() - start
    start = time.perf_counter()
    index.delete_synopsis(key)
    delete_t = time.perf_counter() - start
    del key
    return {"build": build, "insert": insert_t, "delete": delete_t}


def main() -> None:
    table = TableReporter(
        "T-DYN: dynamic updates vs full rebuild",
        ["structure", "N", "rebuild (s)", "insert (s)", "delete (s)",
         "insert speedup"],
    )
    for kind in ("threshold", "range"):
        for n in (50, 150):
            r = measure_ptile(kind, n, seed=n)
            table.add_row(
                [f"ptile-{kind}", n, r["build"], r["insert"], r["delete"],
                 r["build"] / max(r["insert"], 1e-9)]
            )
            assert r["insert"] < r["build"]
    for n in (50, 150):
        r = measure_pref(n, seed=n)
        table.add_row(
            ["pref", n, r["build"], r["insert"], r["delete"],
             r["build"] / max(r["insert"], 1e-9)]
        )
        assert r["insert"] < r["build"]
    table.print()
    print("Remark reproduced: single-synopsis updates are far cheaper than a")
    print("rebuild and grow with the per-dataset mapped-point count, not N.")


def test_tdyn_insert_delete(benchmark):
    rng = np.random.default_rng(12)
    lake = synthetic_data_lake(60, 1, rng, median_size=300, size_sigma=0.3)
    index = PtileThresholdIndex(
        [ExactSynopsis(p) for p in lake], eps=0.2, sample_size=SAMPLE, rng=rng
    )
    extra_pts = rng.uniform(0.0, 1.0, size=(200, 1))

    def cycle():
        key = index.insert_synopsis(ExactSynopsis(extra_pts))
        index.delete_synopsis(key)

    benchmark(cycle)


if __name__ == "__main__":
    main()
