"""ABL-CORESET — ablation: coreset size vs accuracy, memory and speed.

Design choice under study (Section 4.1 / DESIGN.md substitution 4): the
coreset size s drives everything — the effective ε (≈ s^{-1/2}), the
mapped-point count (≈ s²/2 per dataset in d = 1), build time, and
precision.  Recall must hold at *every* size because the query slack is
widened to the ε the coreset actually buys.

Run ``python benchmarks/bench_ablation_coreset_size.py`` for the table.
"""

from __future__ import annotations

import numpy as np

from repro.bench.harness import TableReporter, time_callable
from repro.core.ptile_threshold import PtileThresholdIndex
from repro.geometry.rectangle import Rectangle
from repro.synopsis.exact import ExactSynopsis
from repro.workloads.generators import dataset_with_mass

QUERY = Rectangle([0.0], [0.25])
A_THETA = 0.5
N = 80


def planted(rng):
    datasets, masses = [], []
    for i in range(N):
        mass = (i % 20) / 20 + 0.025
        pts = dataset_with_mass(400, QUERY, mass, rng)
        datasets.append(pts)
        masses.append(QUERY.count_inside(pts) / 400)
    return datasets, masses


def run_size(sample_size: int, datasets, masses) -> dict:
    syns = [ExactSynopsis(p) for p in datasets]
    build = time_callable(
        lambda: PtileThresholdIndex(
            syns, eps=0.01, sample_size=sample_size, rng=np.random.default_rng(1)
        ),
        repeats=1,
    )
    index = PtileThresholdIndex(
        syns, eps=0.01, sample_size=sample_size, rng=np.random.default_rng(1)
    )
    truth = {i for i, m in enumerate(masses) if m >= A_THETA}
    result = index.query(QUERY, A_THETA)
    recall_ok = truth <= result.index_set
    precision = len(truth & result.index_set) / max(1, result.out_size)
    q = time_callable(lambda: index.query(QUERY, A_THETA), repeats=3)
    return {
        "s": sample_size,
        "eps_eff": index.eps_effective,
        "points": index.n_mapped_points,
        "build": build,
        "recall_ok": recall_ok,
        "precision": precision,
        "out": result.out_size,
        "truth": len(truth),
        "q": q,
    }


def main() -> None:
    rng = np.random.default_rng(77)
    datasets, masses = planted(rng)
    table = TableReporter(
        f"ABL-CORESET: coreset size sweep (N = {N}, a_theta = {A_THETA})",
        ["s", "eps_eff", "mapped pts", "build (s)", "|truth|", "OUT",
         "recall ok", "precision", "query (s)"],
    )
    precisions = []
    for s in (8, 16, 32, 64):
        r = run_size(s, datasets, masses)
        table.add_row(
            [r["s"], r["eps_eff"], r["points"], r["build"], r["truth"],
             r["out"], r["recall_ok"], r["precision"], r["q"]]
        )
        assert r["recall_ok"], "recall must hold at every coreset size"
        precisions.append(r["precision"])
    table.print()
    assert precisions[-1] >= precisions[0], "precision should improve with s"
    print("Ablation: precision tightens as s grows (eps_eff ~ s^-1/2) while")
    print("memory grows ~ s^2 and recall holds at every size — exactly the")
    print("space/accuracy dial the paper's eps parameter exposes.")


def test_abl_coreset_mid(benchmark):
    rng = np.random.default_rng(77)
    datasets, _ = planted(rng)
    index = PtileThresholdIndex(
        [ExactSynopsis(p) for p in datasets],
        eps=0.01,
        sample_size=24,
        rng=np.random.default_rng(1),
    )
    benchmark(lambda: index.query(QUERY, A_THETA))


if __name__ == "__main__":
    main()
