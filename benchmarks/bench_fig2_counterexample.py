"""FIG2 — the Section 4.3 counterexample.

Paper artifact (Figure 2 + the Section 4.3 inline example): with a
two-sided theta, a threshold-style structure that accepts *any* qualifying
sub-rectangle over-reports (S_2's sub-interval [4, 4] has weight
1/4 ∈ [0.2, 0.4] although the maximal interval [4, 6] has weight 0.5);
the maximal-pair structure of Algorithm 3/4 does not.

Run ``python benchmarks/bench_fig2_counterexample.py`` for the table.
"""

from __future__ import annotations

import numpy as np

from repro.bench.harness import TableReporter
from repro.core.ptile_range import PtileRangeIndex
from repro.geometry.interval import Interval
from repro.geometry.rect_enum import RectangleGrid, enumerate_rectangles
from repro.geometry.rectangle import Rectangle
from repro.synopsis.exact import ExactSynopsis

S1 = np.array([[1.0], [7.0], [9.0]])
S2 = np.array([[2.0], [4.0], [6.0], [10.0]])
QUERY = Rectangle([3.0], [8.0])
THETA = Interval(0.2, 0.4)


class _FixedSynopsis(ExactSynopsis):
    def sample(self, size, rng):
        reps = -(-size // self.n_points)
        return np.tile(self.points, (reps, 1))[: max(size, self.n_points)]


def naive_any_subrectangle_answer() -> set[int]:
    """The broken strategy: report if ANY precomputed rectangle inside R
    has weight in theta (what re-using Algorithm 2 for ranges would do)."""
    out = set()
    for idx, pts in enumerate((S1, S2)):
        for rect, weight in enumerate_rectangles(RectangleGrid(pts)):
            if rect.contained_in(QUERY) and weight in THETA:
                out.add(idx)
                break
    return out


def build_range_index() -> PtileRangeIndex:
    index = PtileRangeIndex(
        [_FixedSynopsis(S1), _FixedSynopsis(S2)],
        eps=0.005,
        sample_size=4,
        bounding_box=Rectangle([0.0], [11.0]),
        rng=np.random.default_rng(0),
    )
    index.eps_effective = index.eps
    return index


def main() -> None:
    exact = {
        i
        for i, pts in enumerate((S1, S2))
        if QUERY.count_inside(pts) / len(pts) in THETA
    }
    broken = naive_any_subrectangle_answer()
    fixed = build_range_index().query(QUERY, THETA).index_set
    table = TableReporter(
        "FIG2: two-sided theta = [0.2, 0.4] on R = [3, 8] (1-based indexes)",
        ["strategy", "reported", "correct?"],
    )
    table.add_row(["exact ground truth", sorted(i + 1 for i in exact), "—"])
    table.add_row(
        [
            "any-subrectangle (Fig. 2 failure)",
            sorted(i + 1 for i in broken),
            "NO" if broken != exact else "yes",
        ]
    )
    table.add_row(
        [
            "maximal pairs (Algorithm 3/4)",
            sorted(i + 1 for i in fixed),
            "yes" if fixed == exact else "NO",
        ]
    )
    table.print()
    assert broken != exact, "the counterexample should trip the naive strategy"
    assert fixed == exact, "the maximal-pair structure must be correct here"
    print("FIG2 reproduced: naive over-reports index 2; Algorithm 4 does not.")


def test_fig2_range_query(benchmark):
    index = build_range_index()
    result = benchmark(lambda: index.query(QUERY, THETA))
    assert result.index_set == {0}


if __name__ == "__main__":
    main()
