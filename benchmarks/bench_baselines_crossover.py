"""T-BASE — Section 4.1's baseline comparison, with OUT held fixed.

Paper artifact: the motivation for the new structures — the naive exact
scan is Ω(N) per query and Fainder-style histogram search is also
super-linear in N, while the new structure answers in ~O(1 + OUT).  We
hold the output size roughly constant while N grows (a fixed number of
planted qualifying datasets among a growing sea of non-qualifying ones)
and report who wins and by what factor, plus capability differences.

Run ``python benchmarks/bench_baselines_crossover.py`` for the tables.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.fainder import FainderStyleIndex
from repro.baselines.linear_scan import LinearScanPtile
from repro.bench.harness import TableReporter, fit_loglog_slope, time_callable
from repro.core.ptile_threshold import PtileThresholdIndex
from repro.geometry.interval import Interval
from repro.geometry.rectangle import Rectangle
from repro.synopsis.exact import ExactSynopsis
from repro.workloads.generators import dataset_with_mass

QUERY = Rectangle([0.0], [0.25])
A_THETA = 0.8
PLANTED_HITS = 10
#: Coreset size and a FIXED phi: with the default phi = 1/N the effective
#: eps (union bound) grows with N and would widen the slack until the
#: planted gap disappears — the honest cost of the paper's
#: s = Theta(eps^-2 log(N/phi)) coreset bound.
SAMPLE_SIZE = 48
PHI = 0.5


def lake_with_fixed_out(n: int, rng):
    """PLANTED_HITS qualifying datasets; the rest far below threshold.

    The gap (0.9 vs 0.05) exceeds 2*eps_effective at every sweep N, so the
    output size stays pinned at PLANTED_HITS while N grows."""
    datasets = []
    for i in range(n):
        mass = 0.9 if i < PLANTED_HITS else 0.05
        datasets.append(dataset_with_mass(300, QUERY, mass, rng))
    return datasets


def run_scale(n: int, seed: int) -> dict:
    rng = np.random.default_rng(seed)
    datasets = lake_with_fixed_out(n, rng)
    index = PtileThresholdIndex(
        [ExactSynopsis(p) for p in datasets],
        eps=0.1,
        phi=PHI,
        sample_size=SAMPLE_SIZE,
        rng=np.random.default_rng(1),
    )
    scan = LinearScanPtile(datasets, mode="tree")
    fainder = FainderStyleIndex(datasets, bins=32)
    res = index.query(QUERY, A_THETA)
    assert set(range(PLANTED_HITS)) <= res.index_set
    assert res.out_size == PLANTED_HITS, "OUT must stay fixed for the sweep"
    q_index = time_callable(lambda: index.query(QUERY, A_THETA), repeats=5)
    q_scan = time_callable(
        lambda: scan.query(QUERY, Interval(A_THETA, 1.0)), repeats=3
    )
    q_fainder = time_callable(
        lambda: fainder.query(0, "below", 0.25, A_THETA, mode="over"), repeats=5
    )
    return {"n": n, "out": res.out_size, "index": q_index, "scan": q_scan,
            "fainder": q_fainder}


def main() -> None:
    table = TableReporter(
        f"T-BASE: query time vs N with OUT fixed at ~{PLANTED_HITS} "
        f"(threshold a = {A_THETA})",
        ["N", "OUT", "ours (s)", "scan (s)", "fainder (s)",
         "scan/ours", "fainder/ours"],
    )
    ns, ours, scans, fainders = [], [], [], []
    for n in (50, 100, 200, 400, 800):
        r = run_scale(n, seed=n)
        table.add_row(
            [r["n"], r["out"], r["index"], r["scan"], r["fainder"],
             r["scan"] / max(r["index"], 1e-9),
             r["fainder"] / max(r["index"], 1e-9)]
        )
        ns.append(n)
        ours.append(r["index"])
        scans.append(r["scan"])
        fainders.append(r["fainder"])
    table.print()
    s_ours = fit_loglog_slope(ns, ours)
    s_scan = fit_loglog_slope(ns, scans)
    s_fainder = fit_loglog_slope(ns, fainders)
    print(f"slope vs N — ours: {s_ours:.2f}, scan: {s_scan:.2f}, fainder: {s_fainder:.2f}")
    print("Paper's shape: both baselines are Ω(N) (slope ~1); the new index is")
    print("output-sensitive (slope well below 1 with OUT fixed) and wins by a")
    print("growing factor as N scales.")
    assert s_scan > s_ours, "the scan must scale worse than the index"
    table2 = TableReporter(
        "T-BASE: capability matrix (paper Section 1 / Related Work)",
        ["capability", "ours", "linear scan", "fainder [8]"],
    )
    table2.add_row(["multi-attribute rectangles", "yes", "yes", "no"])
    table2.add_row(["two-sided theta", "yes", "yes", "no"])
    table2.add_row(["preference (top-k) queries", "yes", "via pref-scan", "no"])
    table2.add_row(["federated synopses", "yes", "no (raw data)", "yes"])
    table2.add_row(["no false negatives", "yes", "exact", "only 'over' mode"])
    table2.add_row(["output-sensitive query time", "yes", "no", "no"])
    table2.print()


def test_tbase_ours(thr_index_1d, benchmark):
    benchmark(lambda: thr_index_1d.query(Rectangle([0.0], [0.3]), 0.6))


def test_tbase_scan(scan_1d, benchmark):
    benchmark(lambda: scan_1d.query(Rectangle([0.0], [0.3]), Interval(0.6, 1.0)))


if __name__ == "__main__":
    main()
