"""T-4.4 — Theorem 4.4: the Ptile threshold structure, measured.

Paper claims: ~O(N) space/preprocessing; ~O(1 + OUT) query time; recall 1;
every reported dataset within eps + 2*delta of the threshold (after the
theorem's eps-halving; our implementation exposes the algorithmic
2*eps_effective slack).  We sweep N, verify the guarantees per query, and
fit log-log slopes: construction ~linear in N, query time growing far
slower than the Ω(N) scan baseline.

Run ``python benchmarks/bench_thm44_ptile_threshold.py`` for the tables.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.linear_scan import LinearScanPtile
from repro.bench.harness import TableReporter, fit_loglog_slope, time_callable
from repro.core.ptile_threshold import PtileThresholdIndex
from repro.geometry.interval import Interval
from repro.geometry.rectangle import Rectangle
from repro.synopsis.exact import ExactSynopsis
from repro.workloads.generators import dataset_with_mass

QUERY = Rectangle([0.0], [0.25])
A_THETA = 0.5
SAMPLE_SIZE = 20


def planted_lake(n: int, rng: np.random.Generator):
    """Datasets with masses spread over [0, 1] in QUERY; ground truth known."""
    datasets, masses = [], []
    for i in range(n):
        mass = (i % 20) / 20 + 0.025
        pts = dataset_with_mass(400, QUERY, mass, rng)
        datasets.append(pts)
        masses.append(QUERY.count_inside(pts) / 400)
    return datasets, masses


def run_scale(n: int, seed: int) -> dict:
    rng = np.random.default_rng(seed)
    datasets, masses = planted_lake(n, rng)
    syns = [ExactSynopsis(p) for p in datasets]
    build_time = time_callable(
        lambda: PtileThresholdIndex(
            syns, eps=0.1, sample_size=SAMPLE_SIZE, rng=np.random.default_rng(1)
        ),
        repeats=1,
    )
    index = PtileThresholdIndex(
        syns, eps=0.1, sample_size=SAMPLE_SIZE, rng=np.random.default_rng(1)
    )
    scan = LinearScanPtile(datasets, mode="tree")
    truth = {i for i, m in enumerate(masses) if m >= A_THETA}
    result = index.query(QUERY, A_THETA)
    recall = 1.0 if truth <= result.index_set else 0.0
    slack = 2 * index.eps_effective
    worst_fp = min((masses[j] for j in result.indexes), default=1.0)
    q_index = time_callable(lambda: index.query(QUERY, A_THETA), repeats=3)
    q_scan = time_callable(
        lambda: scan.query(QUERY, Interval(A_THETA, 1.0)), repeats=3
    )
    return {
        "n": n,
        "build": build_time,
        "points": index.n_mapped_points,
        "recall": recall,
        "precision_ok": worst_fp >= A_THETA - slack - 1e-9,
        "out": result.out_size,
        "q_index": q_index,
        "q_scan": q_scan,
    }


def main() -> None:
    table = TableReporter(
        "T-4.4: Ptile threshold structure vs N "
        f"(R = [0, 0.25], a_theta = {A_THETA}, coreset = {SAMPLE_SIZE})",
        ["N", "build (s)", "mapped pts", "OUT", "recall", "precision ok",
         "query (s)", "scan (s)", "speedup"],
    )
    ns, builds, queries, scans = [], [], [], []
    for n in (40, 80, 160, 320):
        r = run_scale(n, seed=n)
        table.add_row(
            [
                r["n"], r["build"], r["points"], r["out"],
                r["recall"], r["precision_ok"], r["q_index"], r["q_scan"],
                r["q_scan"] / max(r["q_index"], 1e-9),
            ]
        )
        assert r["recall"] == 1.0 and r["precision_ok"]
        ns.append(n)
        builds.append(r["build"])
        queries.append(r["q_index"])
        scans.append(r["q_scan"])
    table.print()
    print(f"construction slope vs N : {fit_loglog_slope(ns, builds):.2f} (paper: ~1, i.e. ~O(N))")
    print(f"index query slope vs N  : {fit_loglog_slope(ns, queries):.2f} (paper: ~O(1 + OUT); OUT grows with N here)")
    print(f"scan  query slope vs N  : {fit_loglog_slope(ns, scans):.2f} (baseline: Ω(N))")
    print("Shape check: the index beats the scan and scales sub-linearly in N")
    print("once OUT is held fixed (see T-BASE for the OUT-controlled sweep).")


def test_thm44_query(thr_index_1d, benchmark):
    rect = Rectangle([0.2], [0.7])
    benchmark(lambda: thr_index_1d.query(rect, 0.3))


def test_thm44_scan_baseline(scan_1d, benchmark):
    rect = Rectangle([0.2], [0.7])
    benchmark(lambda: scan_1d.query(rect, Interval(0.3, 1.0)))


if __name__ == "__main__":
    main()
