"""ABL-ENGINE — ablation: kd-tree vs classic range tree engine.

Design choice under study (DESIGN.md substitution 2): the mapped-space
range search runs on a dynamic kd-tree by default; the textbook multi-level
range tree is faithful to the paper's analysis but carries
Θ(n log^{k-1} n) memory.  Outputs must be identical; this ablation measures
the build/query/memory trade at small scale where both are feasible.

Run ``python benchmarks/bench_ablation_engine.py`` for the table.
"""

from __future__ import annotations

import numpy as np

from repro.bench.harness import TableReporter, time_callable
from repro.core.ptile_threshold import PtileThresholdIndex
from repro.geometry.rectangle import Rectangle
from repro.synopsis.exact import ExactSynopsis
from repro.workloads.generators import synthetic_data_lake

QUERY = Rectangle([0.1], [0.6])


def build(engine: str, syns, sample_size: int):
    return PtileThresholdIndex(
        syns,
        eps=0.15,
        sample_size=sample_size,
        engine=engine,
        rng=np.random.default_rng(4),
    )


def run_case(n: int, sample_size: int, seed: int) -> list[list]:
    rng = np.random.default_rng(seed)
    lake = synthetic_data_lake(n, 1, rng, median_size=300, size_sigma=0.3)
    syns = [ExactSynopsis(p) for p in lake]
    rows = []
    results = {}
    for engine in ("kd", "rangetree"):
        b = time_callable(lambda e=engine: build(e, syns, sample_size), repeats=1)
        index = build(engine, syns, sample_size)
        q = time_callable(lambda: index.query(QUERY, 0.3), repeats=5)
        results[engine] = index.query(QUERY, 0.3).index_set
        rows.append([engine, n, sample_size, index.n_mapped_points, b, q])
    assert results["kd"] == results["rangetree"], "engines must agree exactly"
    return rows


def main() -> None:
    table = TableReporter(
        "ABL-ENGINE: kd-tree vs classic range tree (identical outputs)",
        ["engine", "N", "coreset s", "mapped pts", "build (s)", "query (s)"],
    )
    for n, s in ((30, 8), (60, 8), (60, 16)):
        for row in run_case(n, s, seed=n):
            table.add_row(row)
    table.print()
    print("Ablation: both engines return identical index sets on every query;")
    print("the kd-tree builds faster and scales to the R^{4d+2} mapped spaces")
    print("where the multi-level range tree's memory is prohibitive — the")
    print("trade documented in DESIGN.md substitution 2.")


def test_abl_engine_rangetree_query(benchmark):
    rng = np.random.default_rng(14)
    lake = synthetic_data_lake(40, 1, rng, median_size=300, size_sigma=0.3)
    index = build("rangetree", [ExactSynopsis(p) for p in lake], 8)
    benchmark(lambda: index.query(QUERY, 0.3))


if __name__ == "__main__":
    main()
