"""T-D.4 — Theorem D.4: logical expressions of m preference predicates.

Paper claims: an m-dimensional range tree per net-vector subset answers
m-conjunctions with recall 1 and per-predicate precision within
eps + 2*delta; disjunctions reduce to per-predicate queries.  We verify
both at m = 2 and m = 3 and measure the lazy-subset-tree query cost.

Run ``python benchmarks/bench_thmD4_pref_logical.py`` for the table.
"""

from __future__ import annotations

import numpy as np

from repro.bench.harness import TableReporter, time_callable
from repro.core.pref_logical import PrefLogicalIndex
from repro.synopsis.exact import ExactSynopsis

K = 3
EPS = 0.15
DIRS = [
    np.array([1.0, 0.0]),
    np.array([0.0, 1.0]),
    np.array([1.0, 1.0]) / np.sqrt(2),
]


def planted_lake(n: int, rng):
    datasets = []
    for _ in range(n):
        center = rng.uniform(-0.4, 0.4, size=2)
        datasets.append(np.clip(rng.normal(center, 0.15, size=(200, 2)), -0.95, 0.95))
    return datasets


def exact_score(pts, u, k=K):
    return float(np.sort(pts @ u)[len(pts) - k])


def run_case(m: int, n: int, seed: int) -> dict:
    rng = np.random.default_rng(seed)
    datasets = planted_lake(n, rng)
    index = PrefLogicalIndex([ExactSynopsis(p) for p in datasets], k=K, eps=EPS)
    vectors = DIRS[:m]
    thresholds = [0.1] * m
    truth = {
        i
        for i, p in enumerate(datasets)
        if all(exact_score(p, u) >= a for u, a in zip(vectors, thresholds))
    }
    result = index.query_conjunction(vectors, thresholds)
    recall = truth <= result.index_set
    precision_ok = all(
        exact_score(datasets[j], u) >= a - 2 * EPS - 1e-9
        for j in result.indexes
        for u, a in zip(vectors, thresholds)
    )
    disj = index.query_disjunction(vectors, thresholds)
    truth_or = {
        i
        for i, p in enumerate(datasets)
        if any(exact_score(p, u) >= a for u, a in zip(vectors, thresholds))
    }
    q_cold = time_callable(
        lambda: PrefLogicalIndex(
            [ExactSynopsis(p) for p in datasets[:10]], k=K, eps=EPS
        ).query_conjunction(vectors, thresholds),
        repeats=1,
    )
    q_warm = time_callable(
        lambda: index.query_conjunction(vectors, thresholds), repeats=5
    )
    return {
        "m": m,
        "n": n,
        "recall": recall,
        "precision_ok": precision_ok,
        "recall_or": truth_or <= disj.index_set,
        "out": result.out_size,
        "truth": len(truth),
        "trees": index.n_cached_trees,
        "q_cold": q_cold,
        "q_warm": q_warm,
    }


def main() -> None:
    table = TableReporter(
        f"T-D.4: m-conjunctions of preference predicates (k = {K}, eps = {EPS})",
        ["m", "N", "|truth|", "OUT", "recall ∧", "precision ok", "recall ∨",
         "cached trees", "cold q (s)", "warm q (s)"],
    )
    for m in (2, 3):
        for n in (40, 80):
            r = run_case(m, n, seed=m * 1000 + n)
            table.add_row(
                [r["m"], r["n"], r["truth"], r["out"], r["recall"],
                 r["precision_ok"], r["recall_or"], r["trees"],
                 r["q_cold"], r["q_warm"]]
            )
            assert r["recall"] and r["precision_ok"] and r["recall_or"]
    table.print()
    print("Theorem D.4 reproduced; warm queries (cached subset tree) are far")
    print("cheaper than cold ones — the lazy-cache substitute for the paper's")
    print("eager all-subsets preprocessing (DESIGN.md, substitution 4).")


def test_thmD4_conjunction(benchmark):
    rng = np.random.default_rng(6)
    datasets = planted_lake(60, rng)
    index = PrefLogicalIndex([ExactSynopsis(p) for p in datasets], k=K, eps=EPS)
    vectors = DIRS[:2]
    index.query_conjunction(vectors, [0.1, 0.1])  # warm the subset tree
    benchmark(lambda: index.query_conjunction(vectors, [0.1, 0.1]))


if __name__ == "__main__":
    main()
