"""BACKEND-MATRIX — kd vs range-tree vs columnar across sizes and batches.

The pluggable-backend refactor promises that the vectorized columnar
engine beats the interpreter-bound kd-tree walk on the Theorem 4.11
workload at service scale.  This benchmark measures exactly that claim:

- repository sizes ``N`` sweep the Ptile range structure (T-4.11 planted
  lake, fixed coreset size) per backend;
- batch shapes: a single hot query repeated, and a batch of distinct
  queries (the shape the service's leaf executor sees);
- every backend must return *identical* answer sets — the run asserts it.

The textbook range tree is ``Theta(n log^{k-1} n)`` memory in the
``R^{4d+2}`` mapped space, so it only participates at the smallest size;
larger sizes report ``None`` for it rather than silently dropping the
column.

Run ``python benchmarks/bench_backend_matrix.py`` for the full sweep and
``BENCH_backend_matrix.json``; ``--smoke`` runs a single small size (no
JSON write) as a CI regression guard.
"""

from __future__ import annotations

import argparse
import os
import time

import numpy as np

from repro.bench.harness import TableReporter, json_report, time_callable
from repro.core.ptile_range import PtileRangeIndex
from repro.geometry.interval import Interval
from repro.geometry.rectangle import Rectangle
from repro.index.backend import ENGINES
from repro.synopsis.exact import ExactSynopsis
from repro.workloads.generators import dataset_with_mass

QUERY = Rectangle([0.0], [0.25])
THETA = Interval(0.3, 0.6)
SAMPLE_SIZE = 16
#: The multi-level range tree participates up to this repository size only:
#: its ``Theta(n log^5 n)`` pure-Python construction in the ``R^6`` mapped
#: space takes ~30 s for a few hundred points already.
RANGETREE_MAX_N = 8


def planted_lake(n: int, rng: np.random.Generator):
    datasets = []
    for i in range(n):
        mass = (i % 20) / 20 + 0.025
        datasets.append(dataset_with_mass(400, QUERY, mass, rng))
    return datasets


def batch_queries(q: int, rng: np.random.Generator):
    """Distinct (rect, theta) pairs shaped like the service leaf stream."""
    out = []
    for _ in range(q):
        lo = float(rng.uniform(0.0, 0.4))
        hi = float(rng.uniform(lo + 0.1, 1.0))
        a = float(rng.uniform(0.0, 0.5))
        b = float(rng.uniform(a, 1.0))
        out.append((Rectangle([lo], [hi]), Interval(a, b)))
    return out


def build(engine: str, syns):
    return PtileRangeIndex(
        syns,
        eps=0.1,
        sample_size=SAMPLE_SIZE,
        engine=engine,
        rng=np.random.default_rng(1),
    )


def run_scale(n: int, batch_q: int, repeats: int, seed: int) -> list[dict]:
    rng = np.random.default_rng(seed)
    datasets = planted_lake(n, rng)
    syns = [ExactSynopsis(p) for p in datasets]
    batch = batch_queries(batch_q, np.random.default_rng(seed + 1))
    rows = []
    answers: dict[str, list] = {}
    for engine in ENGINES:
        if engine == "rangetree" and n > RANGETREE_MAX_N:
            rows.append(
                {
                    "engine": engine,
                    "n": n,
                    "mapped_pts": None,
                    "build_s": None,
                    "query_s": None,
                    "batch_s_per_query": None,
                    "out": None,
                    "skipped": f"n > {RANGETREE_MAX_N} (Theta(n log^5 n) memory)",
                }
            )
            continue
        # Release the previous engine's structure BEFORE the timer starts:
        # tearing down a Theta(n log^5 n) range tree takes seconds of
        # refcount work and must not be billed to the next build.
        index = None
        t0 = time.perf_counter()
        index = build(engine, syns)
        build_s = time.perf_counter() - t0
        result = index.query(QUERY, THETA)
        answers[engine] = sorted(result.index_set)
        query_s = time_callable(lambda: index.query(QUERY, THETA), repeats=repeats)
        batch_s = time_callable(
            lambda: [index.query(r, t) for r, t in batch], repeats=repeats
        )
        rows.append(
            {
                "engine": engine,
                "n": n,
                "mapped_pts": index.n_mapped_points,
                "build_s": build_s,
                "query_s": query_s,
                "batch_s_per_query": batch_s / batch_q,
                "out": len(result.indexes),
                "skipped": None,
            }
        )
    reference = answers["kd"]
    for engine, got in answers.items():
        assert got == reference, (
            f"answer mismatch: {engine} disagrees with kd at n={n}"
        )
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="one small size, single repeat, no JSON write (CI guard)",
    )
    args = parser.parse_args(argv)
    # Smoke skips the rangetree tier (size 8) entirely: a ~minute-long
    # pure-Python build has no place in a PR-time regression guard.
    sizes = (40,) if args.smoke else (8, 40, 160, 320)
    repeats = 1 if args.smoke else 5
    batch_q = 8 if args.smoke else 32
    table = TableReporter(
        f"BACKEND-MATRIX: Ptile range (T-4.11) per engine "
        f"(theta = [{THETA.lo}, {THETA.hi}], batch = {batch_q})",
        ["engine", "N", "mapped pts", "build (s)", "query (s)",
         "batch s/query", "OUT"],
    )
    rows: list[dict] = []
    for n in sizes:
        for r in run_scale(n, batch_q, repeats, seed=n):
            rows.append(r)
            table.add_row(
                [r["engine"], r["n"],
                 r["mapped_pts"] if r["mapped_pts"] is not None else "-",
                 r["build_s"] if r["build_s"] is not None else "-",
                 r["query_s"] if r["query_s"] is not None else "-",
                 r["batch_s_per_query"]
                 if r["batch_s_per_query"] is not None else "-",
                 r["out"] if r["out"] is not None else "-"]
            )
    table.print()
    largest = max(sizes)
    by_engine = {
        r["engine"]: r for r in rows if r["n"] == largest and not r["skipped"]
    }
    speedup = by_engine["kd"]["query_s"] / by_engine["columnar"]["query_s"]
    batch_speedup = (
        by_engine["kd"]["batch_s_per_query"]
        / by_engine["columnar"]["batch_s_per_query"]
    )
    print("All backends returned identical answer sets at every size.")
    print(f"columnar vs kd at N={largest}: {speedup:.1f}x single-query, "
          f"{batch_speedup:.1f}x batched")
    if args.smoke:
        print("(smoke mode: no JSON written)")
        return 0
    path = json_report(
        os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                     "BENCH_backend_matrix.json"),
        rows,
        meta={
            "bench": "backend_matrix",
            "sample_size": SAMPLE_SIZE,
            "batch_q": batch_q,
            "rangetree_max_n": RANGETREE_MAX_N,
            "columnar_vs_kd_query_speedup_at_largest_n": speedup,
            "columnar_vs_kd_batch_speedup_at_largest_n": batch_speedup,
        },
    )
    print(f"wrote {path}")
    return 0


def test_backend_matrix_columnar_query(benchmark):
    rng = np.random.default_rng(17)
    syns = [ExactSynopsis(p) for p in planted_lake(60, rng)]
    index = build("columnar", syns)
    benchmark(lambda: index.query(QUERY, THETA))


if __name__ == "__main__":
    raise SystemExit(main())
