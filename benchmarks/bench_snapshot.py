"""BENCH-SNAPSHOT — mmap cold starts and pre-forked warm QPS.

Measures the persistence + multi-process serving layer end to end:

- **cold start** — wall-clock to build + warm a ``QueryService`` from raw
  arrays versus ``QueryService.load(mmap=True)`` (zero-copy page-mapped
  restore) and ``load(mmap=False)`` (private in-memory copy), swept over
  the lake size.  Answer equality between the built and every loaded
  service is asserted on the full query batch at every sweep point —
  a fast cold start that serves different answers would be worthless.
- **warm QPS** — aggregate queries/sec through the pre-forked
  :class:`~repro.service.supervisor.ServiceSupervisor` versus worker
  count, with concurrent HTTP clients hammering ``POST /search/batch``
  and every response checked against the single-process answers.

Targets (asserted in full mode):

- cold start via ``load(mmap=True)`` at the largest lake size must be
  **>= 10x** faster than build + warm;
- aggregate warm QPS at 4 workers must be **>= 3x** the 1-worker QPS —
  *only asserted when the machine has >= 4 CPU cores*: pre-forking
  sidesteps the GIL, but it cannot conjure cores, so on smaller hosts
  the scaling rows are still measured and reported honestly while the
  assertion is recorded as gated in the JSON meta.

Writes ``BENCH_snapshot.json`` next to the repo root.  ``--smoke`` runs a
tiny sweep (and skips the JSON) for CI; the QPS section is fork-gated and
skipped cleanly on platforms without ``os.fork``.
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
import time
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.bench.harness import TableReporter, json_report
from repro.core.framework import Repository
from repro.service import QueryService
from repro.service.server import expression_to_json
from repro.service.supervisor import ServiceSupervisor, fork_available
from repro.workloads.generators import synthetic_data_lake
from repro.workloads.queries import batched_query_workload

EPS = 0.2
SAMPLE_SIZE = 12
SEED = 2025
ENGINE = "columnar"  # zero-copy mmap restore; kd/rangetree re-plant trees
N_SHARDS = 4
REPORT = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                      "BENCH_snapshot.json")

COLD_TARGET_SPEEDUP = 10.0
QPS_TARGET_SCALING = 3.0
QPS_TARGET_WORKERS = 4


def build_workload(n_datasets: int, n_queries: int, dim: int):
    rng = np.random.default_rng(SEED)
    lake = synthetic_data_lake(
        n_datasets, dim, rng, family="clustered", median_size=300, size_sigma=0.4
    )
    queries = batched_query_workload(
        n_queries, dim, np.random.default_rng(SEED + 1), duplicate_leaf_rate=0.5
    )
    return lake, queries


def build_service(lake) -> QueryService:
    """The whole raw-arrays-to-serving cold path: dataset validation,
    repository assembly, shard partitioning, coreset draws, mapped-point
    matrices (the maximal-pair rectangle enumeration) — everything
    ``load()`` restores from the container instead of recomputing."""
    repo = Repository.from_arrays(lake)
    service = QueryService(
        repository=repo,
        n_shards=N_SHARDS,
        cache_capacity=4096,
        eps=EPS,
        sample_size=SAMPLE_SIZE,
        seed=SEED,
        engine=ENGINE,
    )
    service.warm()
    return service


def run_cold_start(n_datasets: int, n_queries: int, dim: int, workdir: str) -> dict:
    """Time build+warm vs load(mmap)/load(copy); assert answer equality."""
    lake, queries = build_workload(n_datasets, n_queries, dim)

    t0 = time.perf_counter()
    built = build_service(lake)
    build_s = time.perf_counter() - t0
    expected = [r.indexes for r in built.search_batch(queries)]

    snap = os.path.join(workdir, f"bench_{n_datasets}.snap")
    info = built.save(snap)
    built.close()

    t0 = time.perf_counter()
    mapped = QueryService.load(snap, mmap=True)
    load_mmap_s = time.perf_counter() - t0
    assert [r.indexes for r in mapped.search_batch(queries)] == expected, (
        "mmap-loaded service diverged from the built service"
    )
    mapped.close()

    t0 = time.perf_counter()
    copied = QueryService.load(snap, mmap=False)
    load_copy_s = time.perf_counter() - t0
    assert [r.indexes for r in copied.search_batch(queries)] == expected, (
        "copy-loaded service diverged from the built service"
    )
    copied.close()

    return {
        "n_datasets": n_datasets,
        "build_s": build_s,
        "load_mmap_s": load_mmap_s,
        "load_copy_s": load_copy_s,
        "speedup_mmap": build_s / load_mmap_s,
        "speedup_copy": build_s / load_copy_s,
        "file_mb": info["file_bytes"] / 1e6,
        "n_arrays": info["n_arrays"],
        "answers_equal": True,
    }


def _post_batch(url: str, body: bytes) -> list:
    req = urllib.request.Request(
        url, data=body, headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(req, timeout=60) as resp:
        return [r["indexes"] for r in json.loads(resp.read())["results"]]


def run_qps(
    snap: str, queries, expected: list, workers: int, n_requests: int
) -> dict:
    """Aggregate QPS with ``2*workers`` concurrent clients; every response
    is checked against ``expected`` (bitwise answer equality over HTTP)."""
    sup = ServiceSupervisor(snap, workers=workers, poll_interval=1.0)
    host, port = sup.start()
    url = f"http://{host}:{port}/search/batch"
    body = json.dumps(
        {"expressions": [expression_to_json(q) for q in queries]}
    ).encode()
    try:
        _post_batch(url, body)  # connection + plan-cache warmup
        n_clients = max(2 * workers, 4)
        t0 = time.perf_counter()
        with ThreadPoolExecutor(max_workers=n_clients) as pool:
            futures = [
                pool.submit(_post_batch, url, body) for _ in range(n_requests)
            ]
            answers = [f.result() for f in futures]
        elapsed = time.perf_counter() - t0
    finally:
        sup.stop()
    assert all(a == expected for a in answers), (
        f"a worker served wrong answers at workers={workers}"
    )
    return {
        "workers": workers,
        "requests": n_requests,
        "queries_per_request": len(queries),
        "elapsed_s": elapsed,
        "qps": n_requests * len(queries) / elapsed,
        "answers_equal": True,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sizes", type=int, nargs="+", default=[100, 200, 400])
    parser.add_argument("--n-queries", type=int, default=60)
    parser.add_argument("--dim", type=int, default=2)
    parser.add_argument("--workers", type=int, nargs="+", default=[1, 2, 4, 8])
    parser.add_argument("--qps-requests", type=int, default=60)
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny CI sweep: one small size, 2 workers max, no JSON report",
    )
    args = parser.parse_args()
    if args.smoke:
        args.sizes, args.n_queries = [24], 12
        args.workers = [w for w in args.workers if w <= 2] or [1, 2]
        args.qps_requests = 8

    cpu_count = os.cpu_count() or 1
    cold_table = TableReporter(
        "BENCH-SNAPSHOT: cold start — build+warm vs load(mmap) vs load(copy)",
        ["datasets", "build (s)", "mmap (s)", "copy (s)",
         "speedup mmap", "speedup copy", "file (MB)"],
    )
    cold_rows = []
    with tempfile.TemporaryDirectory() as workdir:
        for n in args.sizes:
            row = run_cold_start(n, args.n_queries, args.dim, workdir)
            cold_rows.append(row)
            cold_table.add_row(
                [row["n_datasets"], row["build_s"], row["load_mmap_s"],
                 row["load_copy_s"], row["speedup_mmap"], row["speedup_copy"],
                 row["file_mb"]]
            )
    cold_table.print()
    print(f"answer equality asserted on all {args.n_queries} queries "
          f"at every size (mmap and copy loads)")

    largest = cold_rows[-1]
    if not args.smoke:
        assert largest["speedup_mmap"] >= COLD_TARGET_SPEEDUP, (
            f"cold-start target missed: load(mmap) only "
            f"{largest['speedup_mmap']:.1f}x faster than build+warm at "
            f"N={largest['n_datasets']} (target {COLD_TARGET_SPEEDUP:.0f}x)"
        )
        print(f"cold-start target met: {largest['speedup_mmap']:.0f}x >= "
              f"{COLD_TARGET_SPEEDUP:.0f}x at N={largest['n_datasets']}")

    qps_rows: list[dict] = []
    qps_note = None
    if fork_available():
        lake, queries = build_workload(args.sizes[-1], args.n_queries, args.dim)
        service = build_service(lake)
        expected = [r.indexes for r in service.search_batch(queries)]
        with tempfile.TemporaryDirectory() as workdir:
            snap = os.path.join(workdir, "qps.snap")
            service.save(snap)
            service.close()
            qps_table = TableReporter(
                "BENCH-SNAPSHOT: warm QPS vs pre-forked worker count",
                ["workers", "requests", "elapsed (s)", "qps", "scaling"],
            )
            for w in args.workers:
                row = run_qps(snap, queries, expected, w, args.qps_requests)
                row["scaling_vs_1"] = (
                    row["qps"] / qps_rows[0]["qps"] if qps_rows else 1.0
                )
                qps_rows.append(row)
                qps_table.add_row(
                    [row["workers"], row["requests"], row["elapsed_s"],
                     row["qps"], row["scaling_vs_1"]]
                )
            qps_table.print()
        print(f"every /search/batch response checked against the "
              f"single-process answers ({len(queries)} queries/request)")

        at_target = [r for r in qps_rows if r["workers"] == QPS_TARGET_WORKERS]
        if args.smoke or not at_target:
            qps_note = "not-asserted (smoke or 4-worker point not in sweep)"
        elif cpu_count < QPS_TARGET_WORKERS:
            qps_note = (
                f"gated: cpu_count={cpu_count} < {QPS_TARGET_WORKERS} — "
                f"forking cannot scale past the core count; measured "
                f"{at_target[0]['scaling_vs_1']:.2f}x at "
                f"{QPS_TARGET_WORKERS} workers, reported without asserting"
            )
            print(f"warm-QPS scaling assertion {qps_note}")
        else:
            scaling = at_target[0]["scaling_vs_1"]
            assert scaling >= QPS_TARGET_SCALING, (
                f"warm-QPS target missed: {scaling:.2f}x at "
                f"{QPS_TARGET_WORKERS} workers (target "
                f"{QPS_TARGET_SCALING:.0f}x, cpu_count={cpu_count})"
            )
            qps_note = f"met: {scaling:.2f}x >= {QPS_TARGET_SCALING:.0f}x"
            print(f"warm-QPS scaling target {qps_note}")
    else:
        qps_note = "skipped (no os.fork on this platform)"
        print(f"warm QPS section {qps_note}")

    if args.smoke:
        print("smoke mode: JSON report not written")
        return

    path = json_report(
        REPORT,
        cold_rows + qps_rows,
        meta={
            "bench": "snapshot",
            "engine": ENGINE,
            "n_shards": N_SHARDS,
            "dim": args.dim,
            "n_queries": args.n_queries,
            "eps": EPS,
            "sample_size": SAMPLE_SIZE,
            "cpu_count": cpu_count,
            "cold_target_speedup": COLD_TARGET_SPEEDUP,
            "cold_speedup_at_largest": largest["speedup_mmap"],
            "qps_target": (
                f">= {QPS_TARGET_SCALING:.0f}x at {QPS_TARGET_WORKERS} workers"
            ),
            "qps_scaling_assert": qps_note,
        },
    )
    print(f"wrote {path}")


def test_snapshot_load_mmap(service_1d, benchmark, tmp_path):
    snap = tmp_path / "bench.snap"
    service_1d.save(snap)
    benchmark(lambda: QueryService.load(snap, mmap=True).close())


if __name__ == "__main__":
    main()
