"""T-4.11 — Theorem 4.11: the Ptile range structure, measured.

Paper claims: ~O(N) space/preprocessing, ~O(1 + OUT) query, recall 1,
two-sided precision a - eps - 2delta <= M_R(P_j) <= b + eps + 2delta, no
duplicates (Lemma 4.9).  Sweeps N with planted masses and verifies every
claim per query.

Run ``python benchmarks/bench_thm411_ptile_range.py`` for the tables.
"""

from __future__ import annotations

import os

import numpy as np

from repro.baselines.linear_scan import LinearScanPtile
from repro.bench.harness import TableReporter, fit_loglog_slope, json_report, time_callable
from repro.core.ptile_range import PtileRangeIndex
from repro.geometry.interval import Interval
from repro.geometry.rectangle import Rectangle
from repro.synopsis.exact import ExactSynopsis
from repro.workloads.generators import dataset_with_mass

QUERY = Rectangle([0.0], [0.25])
THETA = Interval(0.3, 0.6)
SAMPLE_SIZE = 16


def planted_lake(n: int, rng: np.random.Generator):
    datasets, masses = [], []
    for i in range(n):
        mass = (i % 20) / 20 + 0.025
        pts = dataset_with_mass(400, QUERY, mass, rng)
        datasets.append(pts)
        masses.append(QUERY.count_inside(pts) / 400)
    return datasets, masses


def run_scale(n: int, seed: int) -> dict:
    rng = np.random.default_rng(seed)
    datasets, masses = planted_lake(n, rng)
    syns = [ExactSynopsis(p) for p in datasets]
    build_time = time_callable(
        lambda: PtileRangeIndex(
            syns, eps=0.1, sample_size=SAMPLE_SIZE, rng=np.random.default_rng(1)
        ),
        repeats=1,
    )
    index = PtileRangeIndex(
        syns, eps=0.1, sample_size=SAMPLE_SIZE, rng=np.random.default_rng(1)
    )
    scan = LinearScanPtile(datasets, mode="tree")
    truth = {i for i, m in enumerate(masses) if m in THETA}
    result = index.query(QUERY, THETA)
    slack = 2 * index.eps_effective
    recall = 1.0 if truth <= result.index_set else 0.0
    two_sided_ok = all(
        THETA.lo - slack - 1e-9 <= masses[j] <= THETA.hi + slack + 1e-9
        for j in result.indexes
    )
    no_dups = len(result.indexes) == len(result.index_set)
    q_index = time_callable(lambda: index.query(QUERY, THETA), repeats=3)
    q_scan = time_callable(lambda: scan.query(QUERY, THETA), repeats=3)
    return {
        "n": n,
        "build": build_time,
        "points": index.n_mapped_points,
        "out": result.out_size,
        "recall": recall,
        "two_sided_ok": two_sided_ok,
        "no_dups": no_dups,
        "q_index": q_index,
        "q_scan": q_scan,
    }


def main() -> None:
    table = TableReporter(
        f"T-4.11: Ptile range structure vs N (theta = [{THETA.lo}, {THETA.hi}])",
        ["N", "build (s)", "mapped pts", "OUT", "recall", "2-sided ok",
         "no dups", "query (s)", "scan (s)"],
    )
    ns, builds, rows = [], [], []
    for n in (40, 80, 160):
        r = run_scale(n, seed=n)
        table.add_row(
            [r["n"], r["build"], r["points"], r["out"], r["recall"],
             r["two_sided_ok"], r["no_dups"], r["q_index"], r["q_scan"]]
        )
        assert r["recall"] == 1.0 and r["two_sided_ok"] and r["no_dups"]
        ns.append(n)
        builds.append(r["build"])
        rows.append(r)
    table.print()
    slope = fit_loglog_slope(ns, builds)
    print(f"construction slope vs N: {slope:.2f} (paper: ~1)")
    print("All Theorem 4.11 guarantees held on every sweep point.")
    path = json_report(
        os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                     "BENCH_thm411_ptile_range.json"),
        rows,
        meta={"bench": "thm411_ptile_range", "sample_size": SAMPLE_SIZE,
              "construction_slope_vs_n": slope},
    )
    print(f"wrote {path}")


def test_thm411_query(range_index_1d, benchmark):
    rect = Rectangle([0.2], [0.7])
    benchmark(lambda: range_index_1d.query(rect, Interval(0.2, 0.6)))


if __name__ == "__main__":
    main()
