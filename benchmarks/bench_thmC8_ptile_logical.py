"""T-C.8 — Theorem C.8: logical expressions of m range-predicates.

Paper claims: same guarantees as Theorem 4.11 per leaf (recall 1; each
reported dataset within the widened theta of *every* conjunct), ~O(N)
space, ~O(1 + OUT) query, for any constant m.  We verify conjunctions and
disjunctions at m = 2 and m = 3 with both strategies (the faithful tensor
construction and the composed one) and check they agree.

Run ``python benchmarks/bench_thmC8_ptile_logical.py`` for the table.
"""

from __future__ import annotations

import numpy as np

from repro.bench.harness import TableReporter, time_callable
from repro.core.framework import Dataset
from repro.core.measures import PercentileMeasure
from repro.core.predicates import And, Or, pred
from repro.core.ptile_logical import PtileLogicalIndex
from repro.geometry.rectangle import Rectangle
from repro.synopsis.exact import ExactSynopsis

R1 = Rectangle([0.0], [0.4])
R2 = Rectangle([0.4], [0.7])
R3 = Rectangle([0.7], [1.0])


def planted_lake(n: int, rng):
    datasets = []
    for _ in range(n):
        w = rng.dirichlet([1.5, 1.5, 1.5])
        counts = rng.multinomial(300, w)
        parts = [
            rng.uniform(lo, hi, size=(c, 1))
            for (lo, hi), c in zip(((0.0, 0.4), (0.4001, 0.7), (0.7001, 1.0)), counts)
        ]
        datasets.append(np.vstack(parts))
    return datasets


def run_case(m: int, n: int, seed: int) -> dict:
    rng = np.random.default_rng(seed)
    datasets = planted_lake(n, rng)
    syns = [ExactSynopsis(p) for p in datasets]
    index = PtileLogicalIndex(
        syns, eps=0.15, sample_size=6, strategy="tensor", rng=np.random.default_rng(3)
    )
    leaves = [
        pred(PercentileMeasure(R1), 0.2, 0.6),
        pred(PercentileMeasure(R2), 0.1, 0.7),
        pred(PercentileMeasure(R3), 0.0, 0.8),
    ][:m]
    conj = And(leaves)
    truth = {i for i, p in enumerate(datasets) if conj.evaluate(Dataset(p))}
    tensor_ans = index.query(conj).index_set
    compose_ans = index._eval(conj)
    disj = Or(leaves)
    truth_or = {i for i, p in enumerate(datasets) if disj.evaluate(Dataset(p))}
    or_ans = index.query(disj).index_set
    q_tensor = time_callable(lambda: index.query(conj), repeats=3)
    return {
        "m": m,
        "n": n,
        "recall_and": truth <= tensor_ans,
        "strategies_agree": tensor_ans == compose_ans,
        "recall_or": truth_or <= or_ans,
        "out": len(tensor_ans),
        "truth": len(truth),
        "q_tensor": q_tensor,
    }


def main() -> None:
    table = TableReporter(
        "T-C.8: m-predicate logical expressions (tensor vs composed)",
        ["m", "N", "|truth ∧|", "OUT ∧", "recall ∧", "tensor==compose",
         "recall ∨", "tensor query (s)"],
    )
    for m in (2, 3):
        for n in (20, 40):
            r = run_case(m, n, seed=m * 100 + n)
            table.add_row(
                [r["m"], r["n"], r["truth"], r["out"], r["recall_and"],
                 r["strategies_agree"], r["recall_or"], r["q_tensor"]]
            )
            assert r["recall_and"] and r["strategies_agree"] and r["recall_or"]
    table.print()
    print("Theorem C.8 reproduced: conjunction/disjunction recall holds and the")
    print("faithful tensor structure agrees with the composed strategy exactly.")


def test_thmC8_conjunction_compose(benchmark):
    rng = np.random.default_rng(8)
    datasets = planted_lake(30, rng)
    index = PtileLogicalIndex(
        [ExactSynopsis(p) for p in datasets],
        eps=0.15,
        sample_size=8,
        rng=np.random.default_rng(3),
    )
    expr = And([pred(PercentileMeasure(R1), 0.2, 0.6), pred(PercentileMeasure(R2), 0.1, 0.7)])
    benchmark(lambda: index.query(expr))


if __name__ == "__main__":
    main()
