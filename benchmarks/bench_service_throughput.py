"""BENCH-SERVICE — query-service throughput vs shard count and cache state.

Measures the serving subsystem end to end on a synthetic lake:

- **equivalence** — ``QueryService(n_shards=4)`` must return identical index
  sets to a single ``DatasetSearchEngine`` over the same deterministic
  synopses for the full mixed Ptile/Pref batch (the sharded union preserves
  the per-leaf guarantees because each dataset lives in exactly one shard);
- **throughput** — queries/sec for a cache-cold batch versus the same batch
  re-run cache-warm, swept over shard counts, with cache hit rates;
- **planner dedup** — the fraction of raw leaf evaluations the batch
  planner avoided.

Writes ``BENCH_service_throughput.json`` (machine-readable rows via
``repro.bench.harness.json_report``) next to the repo root so the perf
trajectory is tracked across PRs.

Run ``python benchmarks/bench_service_throughput.py`` for the tables; use
``--n-datasets/--n-queries/--shards/--dim`` to scale the sweep (dim 1 is
the default, as in the T-4.11 sweeps: it keeps the geometric enumeration
cheap so the bench isolates serving costs).
"""

from __future__ import annotations

import argparse
import os
import time

import numpy as np

from repro.bench.harness import TableReporter, json_report
from repro.core.engine import DatasetSearchEngine
from repro.core.framework import Repository
from repro.service import QueryService
from repro.service.planner import plan_batch
from repro.service.sharding import SeededSampleSynopsis
from repro.synopsis.exact import ExactSynopsis
from repro.workloads.generators import synthetic_data_lake
from repro.workloads.queries import batched_query_workload

EPS = 0.2
SAMPLE_SIZE = 12
SEED = 2025
DUPLICATE_LEAF_RATE = 0.6
REPORT = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                      "BENCH_service_throughput.json")


def build_workload(n_datasets: int, n_queries: int, dim: int):
    rng = np.random.default_rng(SEED)
    lake = synthetic_data_lake(
        n_datasets, dim, rng, family="clustered", median_size=150, size_sigma=0.4
    )
    repo = Repository.from_arrays(lake)
    queries = batched_query_workload(
        n_queries,
        dim,
        np.random.default_rng(SEED + 1),
        pref_fraction=0.3,
        duplicate_leaf_rate=DUPLICATE_LEAF_RATE,
    )
    return lake, repo, queries


def reference_answers(lake, repo, queries, service: QueryService):
    """A single engine with the service's exact resolved parameters."""
    synopses = [
        SeededSampleSynopsis(ExactSynopsis(p), service.executor.seed, i)
        for i, p in enumerate(lake)
    ]
    engine = DatasetSearchEngine(
        synopses=synopses,
        repository=repo,
        eps=EPS,
        phi=service.executor.phi_eff,
        sample_size=service.executor.sample_size,
        bounding_box=repo.bounding_box(),
        rng=np.random.default_rng(0),
    )
    return [sorted(engine._eval(q)) for q in queries]


def run_shard_count(repo, queries, n_shards: int) -> tuple[dict, QueryService]:
    service = QueryService(
        repository=repo,
        n_shards=n_shards,
        cache_capacity=4096,
        eps=EPS,
        sample_size=SAMPLE_SIZE,
        seed=SEED,
    )
    t0 = time.perf_counter()
    service.warm()
    build_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    cold = service.search_batch(queries)
    cold_s = time.perf_counter() - t0
    cold_hit_rate = service.cache.stats.hit_rate
    hits_before, lookups_before = (
        service.cache.stats.hits,
        service.cache.stats.lookups,
    )

    t0 = time.perf_counter()
    warm = service.search_batch(queries)
    warm_s = time.perf_counter() - t0

    stats = service.cache.stats
    warm_lookups = stats.lookups - lookups_before
    warm_hit_rate = (stats.hits - hits_before) / warm_lookups
    row = {
        "n_shards": service.n_shards,
        "build_s": build_s,
        "cold_s": cold_s,
        "cold_qps": len(queries) / cold_s,
        "warm_s": warm_s,
        "warm_qps": len(queries) / warm_s,
        "speedup_warm_vs_cold": cold_s / warm_s,
        "cold_hit_rate": cold_hit_rate,
        "warm_hit_rate": warm_hit_rate,
        "cache_size": len(service.cache),
    }
    assert [r.indexes for r in cold] == [r.indexes for r in warm], (
        "cache-warm answers diverged from cache-cold answers"
    )
    assert warm_hit_rate == 1.0, (
        f"warm batch was not served fully from cache (hit rate {warm_hit_rate})"
    )
    return row, service


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n-datasets", type=int, default=200)
    parser.add_argument("--n-queries", type=int, default=100)
    parser.add_argument("--dim", type=int, default=1)
    parser.add_argument("--shards", type=int, nargs="+", default=[1, 2, 4, 8])
    args = parser.parse_args()

    lake, repo, queries = build_workload(args.n_datasets, args.n_queries, args.dim)
    batch_plan = plan_batch(queries)
    print(
        f"lake: {args.n_datasets} datasets (d = {args.dim}); batch: "
        f"{args.n_queries} queries, {batch_plan.n_leaves_raw} raw leaves, "
        f"{batch_plan.n_leaves_unique} unique "
        f"(planner dedup {batch_plan.dedup_ratio:.0%})"
    )

    table = TableReporter(
        "BENCH-SERVICE: throughput vs shard count (cache cold/warm)",
        ["shards", "build (s)", "cold (s)", "cold q/s", "warm (s)",
         "warm q/s", "speedup", "cold hit", "warm hit"],
    )
    rows = []
    reference = None
    for n_shards in args.shards:
        row, service = run_shard_count(repo, queries, n_shards)
        if n_shards == 4 or (4 not in args.shards and reference is None):
            reference = reference_answers(lake, repo, queries, service)
            answers = [r.indexes for r in service.search_batch(queries)]
            assert answers == reference, (
                "sharded answers diverged from the single-engine reference"
            )
            row["matches_single_engine"] = True
            print(f"equivalence: n_shards={service.n_shards} answers identical "
                  f"to a single DatasetSearchEngine on all {len(queries)} queries")
        service.close()
        rows.append(row)
        table.add_row(
            [row["n_shards"], row["build_s"], row["cold_s"], row["cold_qps"],
             row["warm_s"], row["warm_qps"], row["speedup_warm_vs_cold"],
             row["cold_hit_rate"], row["warm_hit_rate"]]
        )
        assert row["speedup_warm_vs_cold"] > 1.0, (
            "cache-warm batch was not faster than cache-cold"
        )
    table.print()

    path = json_report(
        REPORT,
        rows,
        meta={
            "bench": "service_throughput",
            "n_datasets": args.n_datasets,
            "n_queries": args.n_queries,
            "dim": args.dim,
            "eps": EPS,
            "sample_size": SAMPLE_SIZE,
            "duplicate_leaf_rate": DUPLICATE_LEAF_RATE,
            "planner_dedup_ratio": batch_plan.dedup_ratio,
        },
    )
    print(f"wrote {path}")
    print("Cache-warm batches beat cache-cold at every shard count.")


def test_service_batch_warm(service_1d, service_queries_1d, benchmark):
    service_1d.search_batch(service_queries_1d)  # prime the cache
    benchmark(lambda: service_1d.search_batch(service_queries_1d))


if __name__ == "__main__":
    main()
