"""FIG4 / T-3.4 — the set-intersection → CPtile reduction, end to end.

Paper artifact: Figure 4 and Theorem 3.4 — any exact CPtile structure in R²
answers (uniform) set-intersection queries, so under the strong
set-intersection conjecture no exact CPtile structure can be simultaneously
near-linear in space and near-constant in query time.  We (a) run the
reduction end-to-end and verify exactness on every pair, and (b) measure
how the exact query cost scales with the instance size M — the Ω(·) growth
the conjecture predicts for *any* exact strategy with small space.

Run ``python benchmarks/bench_fig4_set_intersection.py`` for the table.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.linear_scan import LinearScanPtile
from repro.bench.harness import TableReporter, fit_loglog_slope, time_callable
from repro.lowerbounds.set_intersection import (
    intersect_via_cptile,
    intersection_query_rectangle,
    intersection_theta,
    make_uniform_instance,
)


def run_instance(n_sets: int, set_size: int, occurrences: int, seed: int) -> dict:
    rng = np.random.default_rng(seed)
    inst = make_uniform_instance(n_sets, set_size, occurrences, rng)
    scan = LinearScanPtile(inst.datasets, mode="numpy")

    def oracle(rect, theta):
        return set(scan.query(rect, theta).indexes)

    # Exactness on a sample of pairs.
    for i in range(0, n_sets, max(1, n_sets // 4)):
        for j in range(0, n_sets, max(1, n_sets // 4)):
            got = intersect_via_cptile(inst, i, j, cptile_query=oracle)
            assert got == inst.brute_force_intersection(i, j)
    rect = intersection_query_rectangle(inst, 0, n_sets - 1)
    theta = intersection_theta(inst)
    q_time = time_callable(lambda: scan.query(rect, theta), repeats=3)
    return {"M": inst.total_size, "q": inst.universe_size, "time": q_time}


def main() -> None:
    table = TableReporter(
        "FIG4/T-3.4: set intersection through an exact CPtile oracle",
        ["g (sets)", "|S_i|", "M", "N datasets", "exact query time (s)"],
    )
    ms, times = [], []
    for g, s in ((8, 16), (16, 32), (32, 64), (64, 128)):
        r = run_instance(g, s, 4, seed=g)
        table.add_row([g, s, r["M"], r["q"], r["time"]])
        ms.append(r["M"])
        times.append(r["time"])
    table.print()
    slope = fit_loglog_slope(ms, times)
    print(f"log-log slope of exact query time vs M: {slope:.2f}")
    print("Paper's claim: exact CPtile answers set intersection (verified on")
    print("all sampled pairs); exact query cost grows polynomially with M —")
    print("consistent with the conjectured space/time trade-off (Thm 3.4).")
    assert slope > 0.5, "exact query cost must grow with the instance"


def test_fig4_reduction_query(benchmark):
    rng = np.random.default_rng(11)
    inst = make_uniform_instance(16, 16, 4, rng)
    scan = LinearScanPtile(inst.datasets, mode="numpy")

    def oracle(rect, theta):
        return set(scan.query(rect, theta).indexes)

    result = benchmark(lambda: intersect_via_cptile(inst, 2, 9, cptile_query=oracle))
    assert result == inst.brute_force_intersection(2, 9)


if __name__ == "__main__":
    main()
