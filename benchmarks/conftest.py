"""Shared fixtures for the benchmark suite.

Expensive index constructions are session-scoped so the pytest-benchmark
targets measure *queries*, not repeated builds.  Standalone sweeps (tables
over N) live in each file's ``main()``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.framework import Repository
from repro.core.ptile_range import PtileRangeIndex
from repro.core.ptile_threshold import PtileThresholdIndex
from repro.core.pref_index import PrefIndex
from repro.baselines.linear_scan import LinearScanPtile
from repro.baselines.pref_scan import LinearScanPref
from repro.service import QueryService
from repro.synopsis.exact import ExactSynopsis
from repro.workloads.generators import synthetic_data_lake
from repro.workloads.queries import batched_query_workload

#: Default repository size for single-shot benchmark targets.
BENCH_N = 120
#: Coreset size: keeps builds quick while exercising real structures.
BENCH_SAMPLE = 24


@pytest.fixture(scope="session")
def bench_rng():
    return np.random.default_rng(2025)


@pytest.fixture(scope="session")
def lake_1d(bench_rng):
    return synthetic_data_lake(
        BENCH_N, 1, bench_rng, family="clustered", median_size=800, size_sigma=0.4
    )


@pytest.fixture(scope="session")
def lake_2d(bench_rng):
    return synthetic_data_lake(
        60, 2, bench_rng, family="clustered", median_size=600, size_sigma=0.4
    )


@pytest.fixture(scope="session")
def thr_index_1d(lake_1d, bench_rng):
    return PtileThresholdIndex(
        [ExactSynopsis(p) for p in lake_1d],
        eps=0.1,
        sample_size=BENCH_SAMPLE,
        rng=np.random.default_rng(7),
    )


@pytest.fixture(scope="session")
def range_index_1d(lake_1d):
    return PtileRangeIndex(
        [ExactSynopsis(p) for p in lake_1d],
        eps=0.1,
        sample_size=BENCH_SAMPLE,
        rng=np.random.default_rng(7),
    )


@pytest.fixture(scope="session")
def pref_index_2d(lake_2d):
    return PrefIndex([ExactSynopsis(p) for p in lake_2d], k=5, eps=0.1)


@pytest.fixture(scope="session")
def scan_1d(lake_1d):
    return LinearScanPtile(lake_1d, mode="tree")


@pytest.fixture(scope="session")
def service_1d(lake_1d):
    service = QueryService(
        repository=Repository.from_arrays(lake_1d),
        n_shards=4,
        eps=0.1,
        sample_size=BENCH_SAMPLE,
        seed=7,
    )
    service.warm()
    yield service
    service.close()


@pytest.fixture(scope="session")
def service_queries_1d():
    return batched_query_workload(
        50, 1, np.random.default_rng(11), duplicate_leaf_rate=0.5
    )


@pytest.fixture(scope="session")
def pref_scan_2d(lake_2d):
    return LinearScanPref(lake_2d)
