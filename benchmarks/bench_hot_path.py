"""HOT-PATH — packed bitset result algebra, compiled plans, warm QPS.

Before this PR every *warm* answer flowed through Python ``set[int]``
objects: cached leaf answers were frozensets, And/Or combined them with
per-element ``set.intersection``/``set.union``, every query re-ran
canonicalization (child sorting by key repr), and every result eagerly
materialized a sorted Python index list.  This benchmark measures the
replacement end to end on fully warm services:

1. **warm batch QPS** — a fully warmed ``QueryService`` (every leaf
   cached, shards built) answering the same mixed And/Or workload:
   baseline (``algebra="set"``, plan cache off — the pre-PR warm path)
   vs bitset algebra + compiled-plan cache.  Identical answer sets are
   asserted between the modes on every configuration.
2. **warm latency** — per-query p50/p99 over individually timed
   ``search`` calls on the same warm services.
3. **cache memory** — leaf-cache resident bytes after the identical
   warmup, set entries vs packed ``uint64`` bitset entries.
4. **tracing overhead** — the same warm batch with ``trace=True``
   (span tree + stage histograms per batch) vs tracing disabled; the
   disabled path must stay within noise of the untraced service, since
   every instrumented call site collapses to one pointer comparison
   when no tracer is active.

Run ``python benchmarks/bench_hot_path.py`` for the full sweep and
``BENCH_hot_path.json``; ``--smoke`` runs one small size with the
equality / no-regression assertions only (CI guard, no JSON write).
"""

from __future__ import annotations

import argparse
import os
import time

import numpy as np

from repro.bench.harness import TableReporter, json_report
from repro.core.framework import Repository
from repro.service import QueryService
from repro.workloads.generators import synthetic_data_lake
from repro.workloads.queries import batched_query_workload

SAMPLE_SIZE = 12
EPS = 0.2
SEED = 2026
N_QUERIES = 160


def make_workload(n_queries: int):
    """Mixed And/Or Ptile/Pref expressions with realistic leaf sharing."""
    return batched_query_workload(
        n_queries,
        1,
        np.random.default_rng(SEED + 1),
        pref_fraction=0.25,
        duplicate_leaf_rate=0.5,
        max_leaves=4,
    )


def make_service(repo, *, algebra: str, plan_cache: bool) -> QueryService:
    return QueryService(
        repository=repo,
        n_shards=2,
        eps=EPS,
        sample_size=SAMPLE_SIZE,
        seed=SEED,
        algebra=algebra,
        plan_cache_capacity=1024 if plan_cache else 0,
    )


def warm_qps(service, queries, repeats: int, trace: bool = None) -> float:
    """Best-of-``repeats`` warm QPS of one batched call (caches all hot)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        service.search_batch(queries, trace=trace)
        best = min(best, time.perf_counter() - t0)
    return len(queries) / best


def warm_latencies(service, queries, rounds: int) -> np.ndarray:
    """Individually timed warm ``search`` calls, seconds per query."""
    out = []
    for _ in range(rounds):
        for q in queries:
            t0 = time.perf_counter()
            service.search(q)
            out.append(time.perf_counter() - t0)
    return np.asarray(out)


def run_scale(n: int, n_queries: int, repeats: int) -> dict:
    lake = synthetic_data_lake(
        n, 1, np.random.default_rng(SEED), family="clustered",
        median_size=150, size_sigma=0.4,
    )
    repo = Repository.from_arrays(lake)
    queries = make_workload(n_queries)

    baseline = make_service(repo, algebra="set", plan_cache=False)
    bitset = make_service(repo, algebra="bitset", plan_cache=True)
    try:
        # Identical warmup: one cold pass populates every leaf answer.
        base_answers = [r.indexes for r in baseline.search_batch(queries)]
        bits_answers = [r.indexes for r in bitset.search_batch(queries)]
        assert base_answers == bits_answers, f"answer mismatch at n={n}"

        qps_set = warm_qps(baseline, queries, repeats)
        qps_bits = warm_qps(bitset, queries, repeats)
        qps_traced = warm_qps(bitset, queries, repeats, trace=True)
        lat_set = warm_latencies(baseline, queries, rounds=2)
        lat_bits = warm_latencies(bitset, queries, rounds=2)

        # Re-assert equality AFTER the timed runs: the warm path must not
        # have corrupted cached answers in either representation.
        base_after = [r.indexes for r in baseline.search_batch(queries)]
        bits_after = [r.indexes for r in bitset.search_batch(queries)]
        assert base_after == base_answers == bits_after, (
            f"warm answers drifted at n={n}"
        )

        set_bytes = baseline.cache.snapshot()["resident_bytes"]
        bits_bytes = bitset.cache.snapshot()["resident_bytes"]
        assert bitset.stats()["plan_cache"]["hits"] > 0
        return {
            "n": n,
            "n_queries": len(queries),
            "n_cached_leaves": len(bitset.cache),
            "warm_qps_set": qps_set,
            "warm_qps_bitset": qps_bits,
            "warm_qps_traced": qps_traced,
            "warm_speedup": qps_bits / qps_set,
            "tracing_overhead": qps_bits / qps_traced,
            "p50_ms_set": float(np.percentile(lat_set, 50) * 1e3),
            "p50_ms_bitset": float(np.percentile(lat_bits, 50) * 1e3),
            "p99_ms_set": float(np.percentile(lat_set, 99) * 1e3),
            "p99_ms_bitset": float(np.percentile(lat_bits, 99) * 1e3),
            "cache_bytes_set": set_bytes,
            "cache_bytes_bitset": bits_bytes,
            "cache_bytes_ratio": set_bytes / max(bits_bytes, 1),
        }
    finally:
        baseline.close()
        bitset.close()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="one small size, equality + no-regression asserts, no JSON",
    )
    args = parser.parse_args(argv)
    sizes = (40,) if args.smoke else (80, 160, 320)
    n_queries = 48 if args.smoke else N_QUERIES
    repeats = 3 if args.smoke else 7

    table = TableReporter(
        "HOT-PATH: warm serving, set algebra + no plan cache vs bitset + plans",
        ["N", "QPS set", "QPS bitset", "QPS traced", "x", "p50 set (ms)",
         "p50 bits (ms)", "p99 set (ms)", "p99 bits (ms)", "cache set (B)",
         "cache bits (B)", "mem x"],
    )
    rows = []
    for n in sizes:
        r = run_scale(n, n_queries, repeats)
        rows.append(r)
        table.add_row(
            [r["n"], r["warm_qps_set"], r["warm_qps_bitset"],
             r["warm_qps_traced"], r["warm_speedup"],
             r["p50_ms_set"], r["p50_ms_bitset"], r["p99_ms_set"],
             r["p99_ms_bitset"], r["cache_bytes_set"], r["cache_bytes_bitset"],
             r["cache_bytes_ratio"]]
        )
    table.print()
    print("Answer sets identical across algebras at every size "
          "(before and after the timed warm runs).")

    if args.smoke:
        worst = min(r["warm_speedup"] for r in rows)
        assert worst >= 0.9, (
            f"bitset warm path regressed vs the set baseline ({worst:.2f}x)"
        )
        assert all(r["cache_bytes_ratio"] >= 5.0 for r in rows), (
            "bitset cache entries are not substantially smaller"
        )
        # Instrumentation-disabled cost guard: the untraced warm path runs
        # with the observability layer constructed but idle.  Tracing ON
        # is allowed to cost (spans + histograms), but the overhead must
        # stay bounded — a blow-up here means the no-op path grew work.
        worst_traced = max(r["tracing_overhead"] for r in rows)
        assert worst_traced <= 3.0, (
            f"tracing overhead {worst_traced:.2f}x suggests the warm path "
            f"is doing per-query tracing work even when disabled"
        )
        print("smoke: bitset warm path is no slower than the set baseline, "
              "the cache is >= 5x smaller, and traced batches stay within "
              f"{worst_traced:.2f}x of untraced; no JSON written")
        return 0

    largest = rows[-1]
    assert largest["warm_speedup"] >= 3.0, (
        f"warm-QPS speedup {largest['warm_speedup']:.2f}x < 3x at "
        f"N={largest['n']}"
    )
    assert largest["cache_bytes_ratio"] >= 10.0, (
        f"cache resident bytes only {largest['cache_bytes_ratio']:.1f}x "
        f"smaller at N={largest['n']}"
    )
    path = json_report(
        os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                     "BENCH_hot_path.json"),
        rows,
        meta={
            "bench": "hot_path",
            "sample_size": SAMPLE_SIZE,
            "eps": EPS,
            "n_queries": n_queries,
            "baseline": "algebra=set, plan cache disabled (pre-PR warm path)",
            "warm_speedup_at_largest_n": largest["warm_speedup"],
            "cache_bytes_ratio_at_largest_n": largest["cache_bytes_ratio"],
            "tracing_overhead_at_largest_n": largest["tracing_overhead"],
        },
    )
    print(f"wrote {path}")
    return 0


def test_hot_path_warm_batch(benchmark, service_1d, service_queries_1d):
    service_1d.search_batch(service_queries_1d)  # warm every leaf
    benchmark(lambda: service_1d.search_batch(service_queries_1d))


if __name__ == "__main__":
    raise SystemExit(main())
