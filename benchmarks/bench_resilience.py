"""BENCH-RESILIENCE — deadline-bounded tail latency and crash recovery.

Measures the fault-tolerance layer end to end:

- **deadline section** — a shard-evaluation failpoint injects a fixed
  per-shard stall, then ``search_batch`` runs under a sweep of
  ``deadline_ms`` budgets.  Reported per budget: latency p50/p99, the
  fraction of queries answered degraded, and (asserted, always) the
  soundness containment ``must ⊆ exact ⊆ must ∪ maybe`` of every
  degraded answer against a clean twin service.  The point of the
  numbers: p99 tracks the *budget*, not the injected stall — a deadline
  that does not cap tail latency is decoration.
- **recovery section** (fork-gated) — a 3-worker supervisor fleet under
  live ``/search/batch`` traffic has a non-writer worker SIGKILLed.
  Reported: time from kill to respawn, requests served, HTTP 5xx count
  (asserted **zero** — in-flight connection resets are transport errors,
  not served errors), and transport-error count for honesty.

Targets (asserted in full mode):

- with a 30 ms/shard stall armed, p99 under a 50 ms budget must come in
  under the unbounded p99 (the stall times the shard count);
- every degraded answer satisfies the containment (asserted in smoke
  mode too — soundness is not a perf target);
- the killed worker respawns in under 5 s and zero 5xx are served.

Writes ``BENCH_resilience.json`` next to the repo root.  ``--smoke``
runs a tiny sweep (and skips the JSON) for CI; the recovery section is
skipped cleanly on platforms without ``os.fork``.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import tempfile
import threading
import time
import urllib.error

import numpy as np

from repro.bench.harness import TableReporter, http_post_json, json_report
from repro.core.framework import Repository
from repro.service import QueryService, faults
from repro.service.server import expression_to_json
from repro.service.supervisor import ServiceSupervisor, fork_available
from repro.workloads.generators import synthetic_data_lake
from repro.workloads.queries import batched_query_workload

EPS = 0.2
SAMPLE_SIZE = 12
SEED = 2026
ENGINE = "columnar"
N_SHARDS = 4
REPORT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_resilience.json",
)

STALL_S = 0.03            # injected per-shard-eval stall
BOUNDED_BUDGET_MS = 50.0  # the budget whose p99 must beat unbounded p99
RESPAWN_TARGET_S = 5.0


def build_workload(n_datasets: int, n_queries: int, dim: int):
    lake = synthetic_data_lake(
        n_datasets, dim, np.random.default_rng(SEED),
        family="clustered", median_size=200,
    )
    queries = batched_query_workload(
        n_queries, dim, np.random.default_rng(SEED + 1)
    )
    return lake, queries


def build_service(lake) -> QueryService:
    return QueryService(
        repository=Repository.from_arrays(lake),
        n_shards=N_SHARDS,
        eps=EPS,
        sample_size=SAMPLE_SIZE,
        seed=SEED,
        engine=ENGINE,
    )


def assert_containment(degraded, exact) -> None:
    for deg, ex in zip(degraded, exact):
        exact_set = set(ex.indexes)
        if not deg.stats.get("degraded"):
            assert sorted(deg.indexes) == sorted(ex.indexes), (
                "undegraded answer diverged from exact"
            )
            continue
        must = set(deg.indexes)
        maybe = set(deg.maybe_bitmap.to_list())
        assert must <= exact_set <= must | maybe, (
            f"containment violated: must={sorted(must)} "
            f"exact={sorted(exact_set)} maybe={sorted(maybe)}"
        )


def run_deadline_point(
    lake, queries, exact, budget_ms, repeats
) -> dict:
    """Latency distribution + degraded fraction at one budget.

    A fresh service per point: the leaf cache must not smuggle exact
    answers from an earlier, more generous budget into this one.
    """
    svc = build_service(lake)
    try:
        faults.arm(f"shard_eval=sleep:{STALL_S}")
        latencies = []
        degraded = 0
        total = 0
        for _ in range(repeats):
            svc.invalidate_cache()
            t0 = time.perf_counter()
            results = (
                svc.search_batch(queries, deadline_ms=budget_ms)
                if budget_ms is not None
                else svc.search_batch(queries)
            )
            latencies.append(time.perf_counter() - t0)
            degraded += sum(1 for r in results if r.stats.get("degraded"))
            total += len(results)
            faults.disarm()
            assert_containment(results, exact)
            faults.arm(f"shard_eval=sleep:{STALL_S}")
    finally:
        faults.disarm()
        svc.close()
    lat = np.asarray(latencies)
    return {
        "budget_ms": budget_ms,
        "repeats": repeats,
        "p50_ms": float(np.percentile(lat, 50) * 1e3),
        "p99_ms": float(np.percentile(lat, 99) * 1e3),
        "degraded_fraction": degraded / total,
        "containment_ok": True,
    }


def run_recovery(lake, queries, n_workers: int, warm_requests: int) -> dict:
    """Kill a non-writer under traffic; measure respawn + served errors."""
    svc = build_service(lake)
    svc.warm()
    workdir = tempfile.mkdtemp()
    snap = os.path.join(workdir, "resilience.snap")
    svc.save(snap)
    svc.close()

    sup = ServiceSupervisor(
        snap, workers=n_workers, port=0, monitor_interval=0.05,
        backoff_base=0.1, quiet=True,
    )
    statuses: list[int] = []
    transport_errors = 0
    stop = threading.Event()
    try:
        host, port = sup.start()
        body = json.dumps(
            {"expressions": [expression_to_json(q) for q in queries]}
        ).encode()
        url = f"http://{host}:{port}/search/batch"

        def traffic() -> None:
            nonlocal transport_errors
            while not stop.is_set():
                try:
                    # 429s are backpressure, not failures: honor the
                    # gate's Retry-After before counting the request.
                    statuses.append(
                        http_post_json(url, body, timeout=10, stop=stop)
                    )
                except (urllib.error.URLError, ConnectionError, OSError):
                    transport_errors += 1
                time.sleep(0.005)

        thread = threading.Thread(target=traffic, daemon=True)
        thread.start()
        while len(statuses) < warm_requests:
            time.sleep(0.01)

        victim_slot = n_workers - 1  # never the writer
        victim = sup.pids[victim_slot]
        t_kill = time.monotonic()
        os.kill(victim, signal.SIGKILL)
        respawn_s = None
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            health = sup.health()
            worker = health["workers"][victim_slot]
            if worker["alive"] and worker["restarts"] >= 1:
                respawn_s = time.monotonic() - t_kill
                break
            time.sleep(0.02)
        # let traffic settle over the healed fleet
        settled = len(statuses)
        deadline = time.monotonic() + 10
        while len(statuses) < settled + warm_requests and (
            time.monotonic() < deadline
        ):
            time.sleep(0.01)
        stop.set()
        thread.join(timeout=10)
    finally:
        stop.set()
        sup.stop()
        os.unlink(snap)
        try:
            os.unlink(f"{snap}.gen")
        except OSError:
            pass
        os.rmdir(workdir)

    fivexx = sum(1 for s in statuses if s >= 500)
    assert respawn_s is not None, "killed worker never respawned"
    assert fivexx == 0, f"served {fivexx} HTTP 5xx during recovery"
    return {
        "workers": n_workers,
        "requests_served": len(statuses),
        "served_5xx": fivexx,
        "transport_errors": transport_errors,
        "kill_to_respawn_s": respawn_s,
        "respawn_within_target": respawn_s <= RESPAWN_TARGET_S,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n-datasets", type=int, default=60)
    parser.add_argument("--n-queries", type=int, default=16)
    parser.add_argument("--dim", type=int, default=2)
    parser.add_argument("--repeats", type=int, default=12)
    parser.add_argument(
        "--budgets-ms", type=float, nargs="+",
        default=[5.0, BOUNDED_BUDGET_MS, 2000.0],
    )
    parser.add_argument("--workers", type=int, default=3)
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny CI sweep: fewer repeats/queries, no JSON report",
    )
    args = parser.parse_args()
    if args.smoke:
        args.n_datasets, args.n_queries, args.repeats = 24, 6, 3
        args.budgets_ms = [5.0, BOUNDED_BUDGET_MS]

    lake, queries = build_workload(
        args.n_datasets, args.n_queries, args.dim
    )
    clean = build_service(lake)
    exact = clean.search_batch(queries)
    clean.close()

    table = TableReporter(
        "BENCH-RESILIENCE: deadline budgets under a "
        f"{STALL_S * 1e3:.0f}ms/shard injected stall",
        ["budget (ms)", "p50 (ms)", "p99 (ms)", "degraded frac"],
    )
    rows = []
    for budget in [None, *args.budgets_ms]:
        row = run_deadline_point(
            lake, queries, exact, budget, args.repeats
        )
        rows.append(row)
        table.add_row(
            [
                "unbounded" if budget is None else budget,
                row["p50_ms"],
                row["p99_ms"],
                row["degraded_fraction"],
            ]
        )
    table.print()
    print(
        f"containment must ⊆ exact ⊆ must∪maybe asserted on all "
        f"{args.repeats}x{args.n_queries} queries at every budget"
    )

    unbounded = rows[0]
    bounded = next(
        (r for r in rows if r["budget_ms"] == BOUNDED_BUDGET_MS), None
    )
    if not args.smoke and bounded is not None:
        assert bounded["p99_ms"] < unbounded["p99_ms"], (
            f"deadline did not cap tail latency: bounded p99 "
            f"{bounded['p99_ms']:.1f}ms >= unbounded "
            f"{unbounded['p99_ms']:.1f}ms"
        )
        assert bounded["degraded_fraction"] > 0.0, (
            "the stall never triggered degradation — the sweep is vacuous"
        )

    recovery_rows = []
    if fork_available():
        recovery = run_recovery(
            lake, queries, args.workers,
            warm_requests=10 if args.smoke else 40,
        )
        recovery_rows.append(recovery)
        rec_table = TableReporter(
            "BENCH-RESILIENCE: non-writer SIGKILL under live traffic",
            ["workers", "requests", "5xx", "transport errs",
             "respawn (s)"],
        )
        rec_table.add_row(
            [
                recovery["workers"],
                recovery["requests_served"],
                recovery["served_5xx"],
                recovery["transport_errors"],
                recovery["kill_to_respawn_s"],
            ]
        )
        rec_table.print()
        if not args.smoke:
            assert recovery["respawn_within_target"], (
                f"respawn took {recovery['kill_to_respawn_s']:.2f}s "
                f"(> {RESPAWN_TARGET_S}s)"
            )
    else:
        print("recovery section skipped: platform has no os.fork")

    if args.smoke:
        print("smoke mode: JSON report not written")
        return
    path = json_report(
        REPORT,
        rows + recovery_rows,
        meta={
            "bench": "resilience",
            "stall_s": STALL_S,
            "bounded_budget_ms": BOUNDED_BUDGET_MS,
            "engine": ENGINE,
            "n_shards": N_SHARDS,
            "n_datasets": args.n_datasets,
            "n_queries": args.n_queries,
            "fork_available": fork_available(),
        },
    )
    print(f"wrote {path}")


if __name__ == "__main__":
    main()
