"""T-3.5 — Theorem 3.5: halfspace reporting through CPref.

Paper artifact: the Appendix B.2 reduction — halfspace reporting over n
points in R^5 is answered by a CPref structure over singleton datasets
(k = 1), so CPref inherits the Ω(...) halfspace-reporting lower bound.  We
run the reduction end to end: exact round-trips everywhere, and through the
*approximate* Pref structure with its documented margin.

Run ``python benchmarks/bench_thm35_halfspace.py`` for the table.
"""

from __future__ import annotations

import numpy as np

from repro.bench.harness import TableReporter, time_callable
from repro.core.pref_index import PrefIndex
from repro.lowerbounds.halfspace import (
    halfspace_report_brute_force,
    halfspace_report_via_cpref,
    normalize_to_unit_ball,
)
from repro.synopsis.exact import ExactSynopsis

EPS = 0.2


def run_case(n: int, dim: int, seed: int, use_index: bool = True) -> dict:
    """``use_index=False`` skips the approximate-Pref leg: an eps-net in
    R^5 has O(eps^-4) directions, so the approximate structure is only
    exercised in low dimension; the reduction itself (exact oracle) runs
    at every dimension."""
    rng = np.random.default_rng(seed)
    pts, _ = normalize_to_unit_ball(rng.normal(size=(n, dim)))
    if use_index:
        index = PrefIndex(
            [ExactSynopsis(p.reshape(1, dim)) for p in pts], k=1, eps=EPS
        )

        def oracle(unit, k, a):
            return index.query(unit, a).index_set

    else:
        oracle = None

    exact_ok, margin_ok, out_sizes = True, True, []
    for _ in range(5):
        v = rng.normal(size=dim)
        tau = float(rng.uniform(-0.3, 0.5))
        exact = halfspace_report_brute_force(pts, v, tau)
        direct = halfspace_report_via_cpref(pts, v, tau)
        if direct != exact:
            exact_ok = False
        if oracle is not None:
            approx = halfspace_report_via_cpref(pts, v, tau, cpref_query=oracle)
            if not exact <= approx:
                margin_ok = False
            unit = v / np.linalg.norm(v)
            proj = pts @ unit
            for i in approx - exact:
                if proj[i] < tau / np.linalg.norm(v) - 2 * EPS - 1e-9:
                    margin_ok = False
        out_sizes.append(len(exact))
    v = rng.normal(size=dim)
    q_time = time_callable(
        lambda: halfspace_report_via_cpref(pts, v, 0.1, cpref_query=oracle),
        repeats=3,
    )
    return {
        "n": n,
        "dim": dim,
        "exact_ok": exact_ok,
        "margin_ok": margin_ok if oracle is not None else "n/a (oracle only)",
        "avg_out": float(np.mean(out_sizes)),
        "q": q_time,
    }


def main() -> None:
    table = TableReporter(
        "T-3.5: halfspace reporting via CPref (singleton datasets, k = 1)",
        ["n points", "dim", "exact round-trip", "approx within 2*eps",
         "avg OUT", "query (s)"],
    )
    for n, dim, use_index in ((100, 2, True), (200, 3, True), (200, 5, False),
                              (400, 5, False)):
        r = run_case(n, dim, seed=n + dim, use_index=use_index)
        table.add_row(
            [r["n"], r["dim"], r["exact_ok"], r["margin_ok"], r["avg_out"], r["q"]]
        )
        assert r["exact_ok"]
        if use_index:
            assert r["margin_ok"] is True
    table.print()
    print("Theorem 3.5's reduction verified: CPref answers halfspace reporting")
    print("exactly (oracle) and within the documented margin (approx index) —")
    print("in R^5 this ties exact CPref to the halfspace lower bound.")


def test_thm35_reduction(benchmark):
    rng = np.random.default_rng(3)
    pts, _ = normalize_to_unit_ball(rng.normal(size=(150, 5)))
    v = rng.normal(size=5)
    benchmark(lambda: halfspace_report_via_cpref(pts, v, 0.2))


if __name__ == "__main__":
    main()
