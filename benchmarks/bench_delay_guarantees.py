"""T-DELAY — delay guarantees (Section 1.3(iii), Remarks after Thms).

Paper artifact: the structures report indexes with polylog delay — the gap
between consecutive reports is bounded, never Ω(N).  We record per-emission
timestamps on large-output queries and compare the maximum inter-report gap
with the total time an Ω(N) scan needs before its first report can be
confirmed complete.

Run ``python benchmarks/bench_delay_guarantees.py`` for the table.
"""

from __future__ import annotations

import numpy as np

from repro.bench.harness import TableReporter
from repro.core.ptile_range import PtileRangeIndex
from repro.core.ptile_threshold import PtileThresholdIndex
from repro.core.pref_index import PrefIndex
from repro.geometry.interval import Interval
from repro.geometry.rectangle import Rectangle
from repro.synopsis.exact import ExactSynopsis
from repro.workloads.generators import synthetic_data_lake

QUERY = Rectangle([0.0], [0.5])


def delay_stats(result) -> tuple[float, float]:
    gaps = result.delays()
    return max(gaps), float(np.median(gaps))


def run(n: int, seed: int) -> list[list]:
    rng = np.random.default_rng(seed)
    lake = synthetic_data_lake(n, 1, rng, median_size=400, size_sigma=0.3)
    syns = [ExactSynopsis(p) for p in lake]
    rows = []
    thr = PtileThresholdIndex(syns, eps=0.2, sample_size=16, rng=np.random.default_rng(1))
    res = thr.query(QUERY, 0.1, record_times=True)
    mx, med = delay_stats(res)
    rows.append(["ptile-threshold", n, res.out_size, med, mx])
    rng_idx = PtileRangeIndex(syns, eps=0.2, sample_size=12, rng=np.random.default_rng(1))
    res = rng_idx.query(QUERY, Interval(0.0, 1.0), record_times=True)
    mx, med = delay_stats(res)
    rows.append(["ptile-range", n, res.out_size, med, mx])
    pref = PrefIndex(syns, k=3, eps=0.2)
    res = pref.query(np.array([1.0]), 0.0, record_times=True)
    mx, med = delay_stats(res)
    rows.append(["pref", n, res.out_size, med, mx])
    return rows


def main() -> None:
    table = TableReporter(
        "T-DELAY: inter-report gaps on full-output queries",
        ["structure", "N", "OUT", "median gap (s)", "max gap (s)"],
    )
    all_rows = []
    for n in (50, 100, 200):
        rows = run(n, seed=n)
        for row in rows:
            table.add_row(row)
        all_rows.extend(rows)
    table.print()
    # Shape statement: the max gap should grow mildly with N (per-report
    # deletions are polylog-sized), far from proportionally to N.
    by_struct: dict[str, list[list]] = {}
    for row in all_rows:
        by_struct.setdefault(row[0], []).append(row)
    for name, rows in by_struct.items():
        first, last = rows[0], rows[-1]
        growth = last[4] / max(first[4], 1e-9)
        n_growth = last[1] / first[1]
        print(f"{name}: max-gap growth {growth:.1f}x for {n_growth:.0f}x N")
    print("Paper's claim: bounded (polylog) delay — gaps stay small and grow")
    print("much slower than N.")


def test_tdelay_threshold(thr_index_1d, benchmark):
    rect = Rectangle([0.0], [0.9])

    def run_query():
        res = thr_index_1d.query(rect, 0.05, record_times=True)
        assert res.max_delay() is not None
        return res

    benchmark(run_query)


if __name__ == "__main__":
    main()
