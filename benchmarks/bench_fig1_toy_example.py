"""FIG1 — regenerate the paper's Figure 1 worked example (Section 4.2).

Paper artifact: coresets S_1 = {1, 7, 9}, S_2 = {2, 4, 6, 10}; the
precomputed interval families R_1 (6 intervals) and R_2 (10 intervals);
mapped weighted points (e.g. q = (1, 7) with weight 2/3); query R = [3, 8]
with theta = [0.2, 1] reporting both indexes, with ReportFirst finding a
qualifying point per dataset.

Run ``python benchmarks/bench_fig1_toy_example.py`` for the printed tables.
"""

from __future__ import annotations

import numpy as np

from repro.bench.harness import TableReporter
from repro.core.ptile_threshold import PtileThresholdIndex
from repro.geometry.rect_enum import RectangleGrid, enumerate_rectangles
from repro.geometry.rectangle import Rectangle
from repro.synopsis.exact import ExactSynopsis

S1 = np.array([[1.0], [7.0], [9.0]])
S2 = np.array([[2.0], [4.0], [6.0], [10.0]])


class _FixedSynopsis(ExactSynopsis):
    """Sample() returns the stored points verbatim (the paper's coresets)."""

    def sample(self, size, rng):
        reps = -(-size // self.n_points)
        return np.tile(self.points, (reps, 1))[: max(size, self.n_points)]


def build_index() -> PtileThresholdIndex:
    index = PtileThresholdIndex(
        [_FixedSynopsis(S1), _FixedSynopsis(S2)],
        eps=0.005,
        sample_size=4,
        rng=np.random.default_rng(0),
    )
    index.eps_effective = index.eps  # exact toy coresets
    return index


def main() -> None:
    for name, pts, expect in (("R_1", S1, 6), ("R_2", S2, 10)):
        table = TableReporter(
            f"FIG1: precomputed intervals {name} (paper: {expect} intervals)",
            ["interval", "weight |rho ∩ S| / |S|"],
        )
        rects = enumerate_rectangles(RectangleGrid(pts))
        for rect, weight in sorted(rects, key=lambda t: (t[0].lo[0], t[0].hi[0])):
            table.add_row([f"[{rect.lo[0]:g}, {rect.hi[0]:g}]", weight])
        table.print()
        assert len(rects) == expect

    index = build_index()
    result = index.query(Rectangle([3.0], [8.0]), a_theta=0.2)
    table = TableReporter(
        "FIG1: query R = [3, 8], theta = [0.2, 1]  (paper reports {1, 2})",
        ["reported index (1-based as in the paper)", "exact coreset mass in R"],
    )
    coresets = {0: S1, 1: S2}
    for j in result.indexes:
        pts = coresets[j]
        mass = Rectangle([3.0], [8.0]).count_inside(pts) / len(pts)
        table.add_row([j + 1, mass])
    table.print()
    assert result.index_set == {0, 1}
    print("FIG1 reproduced: weights and reported set match the paper.")


def test_fig1_query(benchmark):
    index = build_index()
    rect = Rectangle([3.0], [8.0])
    result = benchmark(lambda: index.query(rect, a_theta=0.2))
    assert result.index_set == {0, 1}


if __name__ == "__main__":
    main()
