"""T-EXT — the Section 6 future-work queries, implemented and measured.

Paper artifact: Section 6 defines nearest-neighbor and diversity queries
over the framework and identifies coresets as the missing piece, pointing
to additive-error constructions [26].  We realize both with r-covers and
measure the additive guarantees plus query cost versus Ω(N) scans.

Run ``python benchmarks/bench_ext_nn_diversity.py`` for the tables.
"""

from __future__ import annotations

import numpy as np

from repro.bench.harness import TableReporter, time_callable
from repro.core.diversity_index import DiversityIndex, diameter
from repro.core.nn_index import NearestNeighborIndex
from repro.geometry.rectangle import Rectangle
from repro.synopsis.cover import CoverSynopsis

RADIUS = 0.04


def make_lake(n: int, rng):
    datasets = []
    for i in range(n):
        center = rng.uniform(0.1, 0.9, size=2)
        spread = 0.02 + 0.1 * ((i % 10) / 10)
        datasets.append(
            np.clip(rng.normal(center, spread, size=(400, 2)), 0.0, 1.0)
        )
    return datasets


def run_nn(n: int, seed: int) -> dict:
    rng = np.random.default_rng(seed)
    datasets = make_lake(n, rng)
    covers = [CoverSynopsis(p, RADIUS) for p in datasets]
    index = NearestNeighborIndex(covers)
    tau = 0.15
    ok_recall = ok_precision = True
    for _ in range(10):
        q = rng.uniform(size=2)
        dists = [float(np.linalg.norm(p - q, axis=1).min()) for p in datasets]
        truth = {i for i, d in enumerate(dists) if d <= tau}
        got = index.query(q, tau).index_set
        if not truth <= got:
            ok_recall = False
        if any(dists[j] > tau + 2 * RADIUS + 1e-9 for j in got):
            ok_precision = False
    q = rng.uniform(size=2)
    t_index = time_callable(lambda: index.query(q, tau), repeats=5)
    t_scan = time_callable(
        lambda: [float(np.linalg.norm(p - q, axis=1).min()) for p in datasets],
        repeats=3,
    )
    return {"n": n, "recall": ok_recall, "precision": ok_precision,
            "t_index": t_index, "t_scan": t_scan}


def run_div(n: int, seed: int) -> dict:
    rng = np.random.default_rng(seed)
    datasets = make_lake(n, rng)
    index = DiversityIndex([CoverSynopsis(p, RADIUS) for p in datasets])
    rect = Rectangle([0.2, 0.2], [0.8, 0.8])
    tau = 0.2
    truth = {
        i
        for i, p in enumerate(datasets)
        if diameter(p[rect.contains_points(p)]) >= tau
    }
    got = index.query(rect, tau).index_set
    recall = truth <= got
    expanded = Rectangle(rect.lo - 2 * RADIUS, rect.hi + 2 * RADIUS)
    precision = all(
        diameter(datasets[j][expanded.contains_points(datasets[j])])
        >= tau - 4 * RADIUS - 1e-9
        for j in got
    )
    t_index = time_callable(lambda: index.query(rect, tau), repeats=3)
    return {"n": n, "recall": recall, "precision": precision, "t_index": t_index}


def main() -> None:
    table = TableReporter(
        f"T-EXT (nearest neighbor): r-cover index, r = {RADIUS}, tau = 0.15",
        ["N", "recall", "precision (tau + 2r)", "index q (s)", "scan q (s)"],
    )
    for n in (50, 100, 200):
        r = run_nn(n, seed=n)
        table.add_row([r["n"], r["recall"], r["precision"], r["t_index"], r["t_scan"]])
        assert r["recall"] and r["precision"]
    table.print()

    table = TableReporter(
        f"T-EXT (diversity): diameter in R >= tau, r = {RADIUS}, tau = 0.2",
        ["N", "recall", "precision (additive band)", "index q (s)"],
    )
    for n in (50, 100):
        r = run_div(n, seed=n)
        table.add_row([r["n"], r["recall"], r["precision"], r["t_index"]])
        assert r["recall"] and r["precision"]
    table.print()
    print("Section 6 extensions realized: both future-work query classes run")
    print("with additive-coreset guarantees (recall 1; precision within the")
    print("documented 2r / 4r bands), as the paper anticipates via [26].")


def test_ext_nn_query(benchmark):
    rng = np.random.default_rng(30)
    datasets = make_lake(80, rng)
    index = NearestNeighborIndex([CoverSynopsis(p, RADIUS) for p in datasets])
    q = np.array([0.4, 0.6])
    benchmark(lambda: index.query(q, 0.15))


def test_ext_diversity_query(benchmark):
    rng = np.random.default_rng(31)
    datasets = make_lake(60, rng)
    index = DiversityIndex([CoverSynopsis(p, RADIUS) for p in datasets])
    rect = Rectangle([0.2, 0.2], [0.8, 0.8])
    benchmark(lambda: index.query(rect, 0.2))


if __name__ == "__main__":
    main()
