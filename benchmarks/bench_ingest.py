"""BENCH-INGEST — live delta-shard ingestion vs. full rebuild.

Measures what one ingest event costs a serving system:

- **delta path** — ``QueryService.add_datasets`` appends the new datasets
  to the delta shard and keeps every cached leaf answer (entries are
  upgraded from the delta shard on their next read);
- **rebuild path** — the pre-mutation alternative: grow the repository and
  ``rebuild()``, reconstructing every shard's Ptile index from scratch and
  flushing the leaf cache.

For each ingest batch size the sweep reports the mutation wall-clock
(including the index build, via ``warm()``), the post-ingest warm batch
latency, and the cache hit rate the repeated workload still enjoys — the
delta path must keep it above zero without any invalidation, the rebuild
path starts cold.  Both paths are checked for exact equivalence against a
fresh service built over the union repository under the same accuracy
contract (``capacity``, bounding box, seed).

Writes ``BENCH_ingest.json`` (machine-readable rows via
``repro.bench.harness.json_report``) next to the repo root so the perf
trajectory is tracked across PRs.

Run ``python benchmarks/bench_ingest.py``; use
``--n-datasets/--n-queries/--shards/--add`` to scale the sweep.
"""

from __future__ import annotations

import argparse
import os
import time

import numpy as np

from repro.bench.harness import TableReporter, json_report
from repro.core.framework import Repository
from repro.service import QueryService
from repro.workloads.generators import synthetic_data_lake
from repro.workloads.queries import batched_query_workload

EPS = 0.2
SAMPLE_SIZE = 12
SEED = 2025
DUPLICATE_LEAF_RATE = 0.6
REPORT = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                      "BENCH_ingest.json")


def build_workload(n_datasets: int, n_add_max: int, n_queries: int, dim: int):
    rng = np.random.default_rng(SEED)
    lake = synthetic_data_lake(
        n_datasets + n_add_max, dim, rng, family="clustered",
        median_size=150, size_sigma=0.4,
    )
    union_repo = Repository.from_arrays(lake)
    queries = batched_query_workload(
        n_queries,
        dim,
        np.random.default_rng(SEED + 1),
        pref_fraction=0.3,
        duplicate_leaf_rate=DUPLICATE_LEAF_RATE,
    )
    return lake, union_repo.bounding_box(), queries


def make_service(lake, box, n_shards, capacity):
    return QueryService(
        repository=Repository.from_arrays(lake),
        n_shards=n_shards,
        cache_capacity=4096,
        eps=EPS,
        sample_size=SAMPLE_SIZE,
        seed=SEED,
        bounding_box=box,
        capacity=capacity,
    )


def warm_hit_rate(service, queries):
    """Hit+upgrade share of lookups for one repeat of the workload."""
    before = service.cache.snapshot()
    t0 = time.perf_counter()
    answers = [r.indexes for r in service.search_batch(queries)]
    wall = time.perf_counter() - t0
    after = service.cache.snapshot()
    lookups = (after["hits"] + after["misses"]) - (
        before["hits"] + before["misses"]
    )
    hits = after["hits"] - before["hits"]
    return answers, wall, (hits / lookups if lookups else 0.0)


def run_ingest(lake, box, queries, n_shards, n_base, n_add) -> dict:
    capacity = len(lake)
    new = lake[n_base:n_base + n_add]

    # --- delta path -------------------------------------------------------
    delta_svc = make_service(lake[:n_base], box, n_shards, capacity)
    delta_svc.warm()
    delta_svc.search_batch(queries)  # steady-state warm cache
    t0 = time.perf_counter()
    receipt = delta_svc.add_datasets(new)
    delta_svc.warm()  # include the delta shard's index build
    ingest_s = time.perf_counter() - t0
    assert receipt["rebuilt"] is False, "delta ingest unexpectedly rebuilt"
    delta_answers, delta_batch_s, delta_hit = warm_hit_rate(delta_svc, queries)
    assert delta_svc.cache.stats.invalidations == 0

    # --- full rebuild path ------------------------------------------------
    rebuild_svc = make_service(lake[:n_base], box, n_shards, capacity)
    rebuild_svc.warm()
    rebuild_svc.search_batch(queries)
    grown = Repository.from_arrays(lake[:n_base + n_add])
    t0 = time.perf_counter()
    rebuild_svc.rebuild(repository=grown)
    rebuild_svc.warm()
    rebuild_s = time.perf_counter() - t0
    rebuild_answers, rebuild_batch_s, rebuild_hit = warm_hit_rate(
        rebuild_svc, queries
    )

    # --- equivalence ------------------------------------------------------
    fresh = make_service(lake[:n_base + n_add], box, 1, capacity)
    expected = [r.indexes for r in fresh.search_batch(queries)]
    assert delta_answers == expected, "delta-ingest answers diverged"
    assert rebuild_answers == expected, "rebuild answers diverged"

    row = {
        "n_shards": delta_svc.n_shards,
        "n_base": n_base,
        "n_add": n_add,
        "ingest_s": ingest_s,
        "rebuild_s": rebuild_s,
        "speedup_ingest_vs_rebuild": rebuild_s / ingest_s,
        "post_ingest_batch_s": delta_batch_s,
        "post_rebuild_batch_s": rebuild_batch_s,
        "post_ingest_hit_rate": delta_hit,
        "post_rebuild_hit_rate": rebuild_hit,
        "cache_upgrades": delta_svc.cache.stats.upgrades,
        "matches_fresh_union_service": True,
    }
    delta_svc.close()
    rebuild_svc.close()
    fresh.close()
    return row


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n-datasets", type=int, default=200)
    parser.add_argument("--n-queries", type=int, default=100)
    parser.add_argument("--dim", type=int, default=1)
    parser.add_argument("--shards", type=int, nargs="+", default=[1, 4])
    parser.add_argument("--add", type=int, nargs="+", default=[1, 4, 16],
                        help="ingest batch sizes to sweep")
    args = parser.parse_args()

    lake, box, queries = build_workload(
        args.n_datasets, max(args.add), args.n_queries, args.dim
    )
    print(
        f"lake: {args.n_datasets} base datasets (d = {args.dim}); "
        f"workload: {args.n_queries} queries repeated after each mutation"
    )

    table = TableReporter(
        "BENCH-INGEST: delta-shard ingest vs full rebuild",
        ["shards", "+K", "ingest (s)", "rebuild (s)", "speedup",
         "warm batch (s)", "cold batch (s)", "hit rate", "upgrades"],
    )
    rows = []
    for n_shards in args.shards:
        for n_add in args.add:
            row = run_ingest(
                lake, box, queries, n_shards, args.n_datasets, n_add
            )
            rows.append(row)
            table.add_row(
                [row["n_shards"], n_add, row["ingest_s"], row["rebuild_s"],
                 row["speedup_ingest_vs_rebuild"], row["post_ingest_batch_s"],
                 row["post_rebuild_batch_s"], row["post_ingest_hit_rate"],
                 row["cache_upgrades"]]
            )
            assert row["post_ingest_hit_rate"] > 0.0, (
                "delta ingest lost the warm cache"
            )
            assert row["speedup_ingest_vs_rebuild"] > 1.0, (
                "delta ingest did not beat the full rebuild"
            )
    table.print()

    path = json_report(
        REPORT,
        rows,
        meta={
            "bench": "ingest",
            "n_datasets": args.n_datasets,
            "n_queries": args.n_queries,
            "dim": args.dim,
            "eps": EPS,
            "sample_size": SAMPLE_SIZE,
            "duplicate_leaf_rate": DUPLICATE_LEAF_RATE,
        },
    )
    print(f"wrote {path}")
    print("Delta-shard ingestion beats the full rebuild at every batch size "
          "and keeps the leaf cache warm (hit rate > 0, zero invalidations).")


if __name__ == "__main__":
    main()
