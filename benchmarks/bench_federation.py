"""BENCH-FEDERATION — scatter-gather overhead and stalled-node containment.

Measures the federated coordinator end to end:

- **overhead section** — the same ``N`` datasets served two ways: one
  ``repro serve`` node behind HTTP, and the federated coordinator
  scatter-gathering over ``--nodes`` nodes of ``N/nodes`` datasets each
  (all in-process servers, loopback HTTP both ways so the comparison is
  fair).  Reported per path: batch latency p50/p99 and the overhead
  ratio.  Exactness is asserted, always: with every node healthy the
  coordinator's answers must equal the single-node service's answers
  query for query — scatter-gather is an execution strategy, not an
  approximation.
- **stalled-node section** (fork-gated) — the same topology with real
  forked node processes, one of which stalls every request well past the
  coordinator's RPC timeout (a ``handler`` sleep failpoint armed in that
  child only).  Live batches run under a ``deadline_ms`` budget.
  Reported: latency p50/p99 with the stall raging, degraded fraction,
  coverage, and HTTP 5xx count.  Asserted, smoke mode included: zero
  5xx, every degraded answer satisfies ``must ⊆ exact ⊆ must ∪ maybe``
  against the single-node oracle, and p99 stays under the deadline plus
  scheduling slack — a straggler that drags the whole federation past
  the budget means the sub-deadline carving failed.

Writes ``BENCH_federation.json`` next to the repo root.  ``--smoke``
runs a tiny sweep (and skips the JSON) for CI; the stalled-node section
is skipped cleanly on platforms without ``os.fork``.
"""

from __future__ import annotations

import argparse
import json
import os
import threading
import time
import urllib.request

import numpy as np

from repro.bench.harness import TableReporter, json_report
from repro.core.bitset import bitmap_from_wire
from repro.core.framework import Repository
from repro.service import QueryService, faults
from repro.service.federation import (
    FederatedCoordinator,
    federated_node_service,
    make_federation_server,
)
from repro.service.server import expression_to_json, make_server
from repro.service.supervisor import fork_available
from repro.workloads.generators import synthetic_data_lake
from repro.workloads.queries import batched_query_workload

EPS = 0.2
SAMPLE_SIZE = 12
SEED = 2027
N_SHARDS = 2
STALL_S = 30.0
DEADLINE_MS = 2000.0
P99_SLACK_S = 1.0
REPORT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_federation.json",
)


def build_service(arrays) -> QueryService:
    return QueryService(
        repository=Repository.from_arrays(arrays),
        n_shards=N_SHARDS,
        eps=EPS,
        sample_size=SAMPLE_SIZE,
        seed=1,
    )


def build_node_service(arrays, offset, total, bounding_box) -> QueryService:
    # Global accuracy frame (capacity, global-index coresets, shared box):
    # the by-construction guarantee that the federated merge equals a
    # single service over the whole lake.
    return federated_node_service(
        arrays,
        offset=offset,
        total=total,
        bounding_box=bounding_box,
        seed=1,
        n_shards=N_SHARDS,
        eps=EPS,
        sample_size=SAMPLE_SIZE,
    )


def serve_http(httpd):
    threading.Thread(target=httpd.serve_forever, daemon=True).start()
    host, port = httpd.server_address
    return f"http://{host}:{port}"


def post_batch(url, payload):
    req = urllib.request.Request(
        f"{url}/search/batch",
        data=payload,
        headers={"Content-Type": "application/json"},
    )
    t0 = time.perf_counter()
    with urllib.request.urlopen(req, timeout=60) as resp:
        body = json.loads(resp.read())
        return resp.status, body, time.perf_counter() - t0


def percentile(xs, q):
    return float(np.percentile(np.asarray(xs, dtype=float), q))


def slices(lake, n_nodes):
    per = len(lake) // n_nodes
    return [lake[i * per:(i + 1) * per] for i in range(n_nodes)]


def must_maybe(result):
    must = set(bitmap_from_wire(result["bitset"]).to_list())
    maybe = (
        set(bitmap_from_wire(result["maybe_bitset"]).to_list())
        if result.get("degraded")
        else set()
    )
    return must, maybe


def run_overhead(lake, queries, n_nodes, repeats):
    """Healthy-path latency: single node vs coordinator at equal total N."""
    payload = json.dumps(
        {
            "expressions": [expression_to_json(q) for q in queries],
            "format": "bitset",
        }
    ).encode()

    single_svc = build_service(lake)
    single_httpd = make_server(single_svc, host="127.0.0.1", port=0)
    single_url = serve_http(single_httpd)

    box = Repository.from_arrays(lake).bounding_box()
    node_svcs = [
        build_node_service(s, i * (len(lake) // n_nodes), len(lake), box)
        for i, s in enumerate(slices(lake, n_nodes))
    ]
    node_httpds = [make_server(s, host="127.0.0.1", port=0) for s in node_svcs]
    node_urls = [serve_http(h) for h in node_httpds]
    coord = FederatedCoordinator(seed=9)
    for url, svc in zip(node_urls, node_svcs):
        ex = svc.executor
        coord.add_node(
            url, synopses=list(ex.synopses), eps=ex.eps,
            eps_effective=ex.eps_effective,
        )
    fed_httpd = make_federation_server(coord, host="127.0.0.1", port=0)
    fed_url = serve_http(fed_httpd)

    try:
        # Warm both paths, then measure.
        post_batch(single_url, payload)
        post_batch(fed_url, payload)
        single_lat, fed_lat = [], []
        for _ in range(repeats):
            status, single_body, dt = post_batch(single_url, payload)
            assert status == 200
            single_lat.append(dt)
            status, fed_body, dt = post_batch(fed_url, payload)
            assert status == 200
            fed_lat.append(dt)
            # Exactness at equal total N: asserted on every repeat.
            for qi, (s, f) in enumerate(
                zip(single_body["results"], fed_body["results"])
            ):
                s_must, _ = must_maybe(s)
                f_must, _ = must_maybe(f)
                assert not f.get("degraded"), "healthy run degraded"
                assert s_must == f_must, (
                    f"federated answer diverged on query {qi}: "
                    f"{sorted(s_must ^ f_must)}"
                )
        return {
            "section": "overhead",
            "n_datasets": len(lake),
            "n_nodes": n_nodes,
            "n_queries": len(queries),
            "repeats": repeats,
            "single_p50_ms": percentile(single_lat, 50) * 1e3,
            "single_p99_ms": percentile(single_lat, 99) * 1e3,
            "federated_p50_ms": percentile(fed_lat, 50) * 1e3,
            "federated_p99_ms": percentile(fed_lat, 99) * 1e3,
            "overhead_ratio_p50": (
                percentile(fed_lat, 50) / max(percentile(single_lat, 50), 1e-9)
            ),
        }
    finally:
        for h in (single_httpd, fed_httpd, *node_httpds):
            h.shutdown()
            h.server_close()
        coord.close()
        single_svc.close()
        for s in node_svcs:
            s.close()


class ForkedNode:
    """A node server in a forked child (see tests/service chaos suite)."""

    def __init__(self, arrays, offset, total, bounding_box, failpoints=None):
        self.service = build_node_service(arrays, offset, total, bounding_box)
        self.service.warm()
        ex = self.service.executor
        ex._pool_width = ex._pool._max_workers if ex._pool is not None else 0
        ex.close()
        httpd = make_server(self.service, host="127.0.0.1", port=0)
        host, port = httpd.server_address
        self.url = f"http://{host}:{port}"
        pid = os.fork()
        if pid == 0:
            try:
                if failpoints:
                    faults.arm(failpoints)
                httpd.serve_forever()
            finally:
                os._exit(0)
        httpd.server_close()
        self.pid = pid

    def close(self):
        import signal

        try:
            os.kill(self.pid, signal.SIGKILL)
            os.waitpid(self.pid, 0)
        except (ProcessLookupError, ChildProcessError):
            pass
        self.service.close()


def run_stalled(lake, queries, n_nodes, repeats):
    """One node stalled past the RPC timeout, batches under a deadline."""
    oracle = build_service(lake)
    exact = [frozenset(r.indexes) for r in oracle.search_batch(queries)]
    oracle.close()

    nodes = []
    coord = None
    fed_httpd = None
    try:
        box = Repository.from_arrays(lake).bounding_box()
        per = len(lake) // n_nodes
        for i, arrays in enumerate(slices(lake, n_nodes)):
            fp = f"handler=sleep:{STALL_S}" if i == n_nodes - 1 else None
            nodes.append(
                ForkedNode(arrays, i * per, len(lake), box, failpoints=fp)
            )
        coord = FederatedCoordinator(
            seed=9,
            rpc_timeout_s=0.4,
            max_retries=1,
            backoff_base_s=0.02,
            backoff_max_s=0.1,
            hedge_delay_s=0.15,
            breaker_threshold=2,
            breaker_reset_s=60.0,
        )
        for node in nodes:
            ex = node.service.executor
            coord.add_node(
                node.url, synopses=list(ex.synopses), eps=ex.eps,
                eps_effective=ex.eps_effective,
            )
        fed_httpd = make_federation_server(coord, host="127.0.0.1", port=0)
        fed_url = serve_http(fed_httpd)
        payload = json.dumps(
            {
                "expressions": [expression_to_json(q) for q in queries],
                "format": "bitset",
                "deadline_ms": DEADLINE_MS,
            }
        ).encode()

        latencies = []
        n_5xx = 0
        n_results = 0
        n_degraded = 0
        coverages = []
        for _ in range(repeats):
            status, body, dt = post_batch(fed_url, payload)
            latencies.append(dt)
            if status >= 500:
                n_5xx += 1
                continue
            coverages.append(body["federation"]["coverage"])
            for qi, result in enumerate(body["results"]):
                n_results += 1
                must, maybe = must_maybe(result)
                # Soundness, asserted on every answer (degraded or not).
                if result.get("degraded"):
                    n_degraded += 1
                    assert must <= exact[qi], (
                        f"must ⊄ exact on query {qi}"
                    )
                    assert exact[qi] <= must | maybe, (
                        f"exact ⊄ must∪maybe on query {qi}"
                    )
                else:
                    assert must == exact[qi], (
                        f"exact answer diverged on query {qi}"
                    )
        p99 = percentile(latencies, 99)
        assert n_5xx == 0, f"{n_5xx} batches answered 5xx under the stall"
        assert n_degraded > 0, "the stall never degraded anything — vacuous"
        assert p99 < DEADLINE_MS / 1e3 + P99_SLACK_S, (
            f"p99 {p99 * 1e3:.0f}ms blew past the {DEADLINE_MS:.0f}ms "
            f"deadline + {P99_SLACK_S * 1e3:.0f}ms slack"
        )
        return {
            "section": "stalled_node",
            "n_datasets": len(lake),
            "n_nodes": n_nodes,
            "stall_s": STALL_S,
            "deadline_ms": DEADLINE_MS,
            "repeats": repeats,
            "p50_ms": percentile(latencies, 50) * 1e3,
            "p99_ms": p99 * 1e3,
            "served_5xx": n_5xx,
            "degraded_fraction": n_degraded / max(n_results, 1),
            "mean_coverage": float(np.mean(coverages)),
            "p99_within_deadline": bool(p99 < DEADLINE_MS / 1e3 + P99_SLACK_S),
        }
    finally:
        if fed_httpd is not None:
            fed_httpd.shutdown()
            fed_httpd.server_close()
        if coord is not None:
            coord.close()
        for node in nodes:
            node.close()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n-datasets", type=int, default=48)
    parser.add_argument("--nodes", type=int, default=3)
    parser.add_argument("--n-queries", type=int, default=8)
    parser.add_argument("--repeats", type=int, default=12)
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny CI sweep: fewer repeats/queries, no JSON report",
    )
    args = parser.parse_args()
    if args.smoke:
        args.n_datasets, args.n_queries, args.repeats = 18, 4, 3

    lake = synthetic_data_lake(
        args.n_datasets, 1, np.random.default_rng(SEED),
        family="clustered", median_size=90,
    )
    queries = batched_query_workload(
        args.n_queries, 1, np.random.default_rng(SEED + 1)
    )

    overhead = run_overhead(lake, queries, args.nodes, args.repeats)
    table = TableReporter(
        f"BENCH-FEDERATION: scatter-gather overhead at N = "
        f"{args.n_datasets} ({args.nodes} nodes)",
        ["path", "p50 (ms)", "p99 (ms)"],
    )
    table.add_row(
        ["single node", overhead["single_p50_ms"], overhead["single_p99_ms"]]
    )
    table.add_row(
        [
            f"federated x{args.nodes}",
            overhead["federated_p50_ms"],
            overhead["federated_p99_ms"],
        ]
    )
    table.print()
    print(
        f"exactness asserted on all {args.repeats}x{args.n_queries} "
        f"healthy-path queries; overhead ratio (p50) = "
        f"{overhead['overhead_ratio_p50']:.2f}x"
    )

    rows = [overhead]
    if fork_available():
        stalled = run_stalled(lake, queries, args.nodes, args.repeats)
        rows.append(stalled)
        s_table = TableReporter(
            f"BENCH-FEDERATION: one node stalled {STALL_S:.0f}s, "
            f"deadline {DEADLINE_MS:.0f}ms",
            ["p50 (ms)", "p99 (ms)", "5xx", "degraded frac", "coverage"],
        )
        s_table.add_row(
            [
                stalled["p50_ms"],
                stalled["p99_ms"],
                stalled["served_5xx"],
                stalled["degraded_fraction"],
                stalled["mean_coverage"],
            ]
        )
        s_table.print()
        print(
            "zero 5xx + containment asserted on every answer; p99 within "
            "deadline + slack"
        )
    else:
        print("stalled-node section skipped: platform has no os.fork")

    if args.smoke:
        print("smoke mode: JSON report not written")
        return
    path = json_report(
        REPORT,
        rows,
        meta={
            "bench": "federation",
            "n_shards": N_SHARDS,
            "eps": EPS,
            "n_datasets": args.n_datasets,
            "n_nodes": args.nodes,
            "n_queries": args.n_queries,
            "stall_s": STALL_S,
            "deadline_ms": DEADLINE_MS,
            "fork_available": fork_available(),
        },
    )
    print(f"wrote {path}")


if __name__ == "__main__":
    main()
