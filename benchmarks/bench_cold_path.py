"""COLD-PATH — vectorized construction, batched kernels, cold QPS.

Before this PR the cold path was interpreter-bound twice over: maximal-pair
enumeration walked ``itertools.product`` grids one Python tuple at a time
(and ``_mapped_points`` concatenated one row per pair), and a cold service
batch evaluated its deduplicated leaf schedule one backend walk per leaf.
This benchmark measures both fixes end to end, asserting answer equality
everywhere:

1. **construction** — ``PtileRangeIndex`` build time with the reference
   (pre-PR) enumeration path vs the vectorized block enumerators, same
   seeds; probe-query answer sets and mapped-point counts must agree.
2. **cold batch** — a *fresh* ``QueryService`` (cache empty, shards
   unbuilt) answering a mixed Ptile/Pref batch: per-leaf loop + reference
   enumeration (the pre-PR cold path) vs batched multi-box kernels +
   vectorized enumeration.  Every mode must return identical answers.
3. **crossover-vs-scan** — per-query time of the index vs the exact
   ``LinearScanPtile`` baseline, both as a single query and amortized over
   a batch of distinct queries (the shape the service cold path sees).

Run ``python benchmarks/bench_cold_path.py`` for the full sweep and
``BENCH_cold_path.json``; ``--smoke`` runs one small size with the
equality / no-regression assertions only (CI guard, no JSON write).
"""

from __future__ import annotations

import argparse
import os
import time

import numpy as np

from repro.baselines.linear_scan import LinearScanPtile
from repro.bench.harness import TableReporter, json_report, time_callable
from repro.core.framework import Repository
from repro.core.ptile_range import PtileRangeIndex
from repro.geometry import rect_enum
from repro.geometry.interval import Interval
from repro.geometry.rectangle import Rectangle
from repro.service import QueryService
from repro.synopsis.exact import ExactSynopsis
from repro.workloads.generators import dataset_with_mass, synthetic_data_lake
from repro.workloads.queries import batched_query_workload

QUERY = Rectangle([0.0], [0.25])
THETA = Interval(0.3, 0.6)
SAMPLE_SIZE = 16
EPS = 0.1
SEED = 2025
#: Distinct queries in the crossover batch (amortizes one shared traversal).
CROSSOVER_BATCH = 32


def planted_lake(n: int, rng: np.random.Generator):
    return [
        dataset_with_mass(400, QUERY, (i % 20) / 20 + 0.025, rng)
        for i in range(n)
    ]


def batch_queries(q: int, rng: np.random.Generator):
    out = []
    for _ in range(q):
        lo = float(rng.uniform(0.0, 0.4))
        hi = float(rng.uniform(lo + 0.1, 1.0))
        a = float(rng.uniform(0.0, 0.5))
        b = float(rng.uniform(a, 1.0))
        out.append((Rectangle([lo], [hi]), Interval(a, b)))
    return out


def build_index(syns, vectorized: bool):
    """Build the T-4.11 index on the chosen enumeration path, timed."""
    previous = rect_enum.VECTORIZED_ENUMERATION
    rect_enum.VECTORIZED_ENUMERATION = vectorized
    try:
        t0 = time.perf_counter()
        index = PtileRangeIndex(
            syns, eps=EPS, sample_size=SAMPLE_SIZE, engine="kd",
            rng=np.random.default_rng(1),
        )
        return index, time.perf_counter() - t0
    finally:
        rect_enum.VECTORIZED_ENUMERATION = previous


def cold_service_run(repo, queries, *, batch_leaves: bool, vectorized: bool,
                     trials: int):
    """Answer one batch on a *fresh* service: cold cache, unbuilt shards.

    Returns ``(answers, cold_s)`` with ``cold_s`` the best of ``trials``
    fresh runs (each trial builds its own service so every run pays the
    full lazy shard build — exactly the cold path a first batch sees).
    """
    previous = rect_enum.VECTORIZED_ENUMERATION
    rect_enum.VECTORIZED_ENUMERATION = vectorized
    try:
        answers = None
        best = float("inf")
        for _ in range(trials):
            service = QueryService(
                repository=repo, n_shards=1, eps=0.2, sample_size=12,
                seed=SEED, batch_leaves=batch_leaves,
            )
            t0 = time.perf_counter()
            results = service.search_batch(queries)
            cold_s = time.perf_counter() - t0
            service.close()
            best = min(best, cold_s)
            answers = [r.indexes for r in results]
        return answers, best
    finally:
        rect_enum.VECTORIZED_ENUMERATION = previous


def run_scale(n: int, n_queries: int, repeats: int, trials: int) -> dict:
    rng = np.random.default_rng(n)
    datasets = planted_lake(n, rng)
    syns = [ExactSynopsis(p) for p in datasets]

    # 1. Construction: reference vs vectorized, same seeds.
    index_ref, build_ref = build_index(syns, vectorized=False)
    index_vec, build_vec = build_index(syns, vectorized=True)
    assert index_ref.n_mapped_points == index_vec.n_mapped_points
    probe = batch_queries(8, np.random.default_rng(n + 1)) + [(QUERY, THETA)]
    for rect, theta in probe:
        ref = sorted(index_ref.query(rect, theta).index_set)
        vec = sorted(index_vec.query(rect, theta).index_set)
        assert ref == vec, f"construction answer mismatch at n={n}"
    del index_ref

    # 2. Cold service batch: pre-PR path vs batched+vectorized.
    lake = synthetic_data_lake(
        n, 1, np.random.default_rng(SEED), family="clustered",
        median_size=150, size_sigma=0.4,
    )
    repo = Repository.from_arrays(lake)
    queries = batched_query_workload(
        n_queries, 1, np.random.default_rng(SEED + 1),
        pref_fraction=0.3, duplicate_leaf_rate=0.3,
    )
    before, cold_before = cold_service_run(
        repo, queries, batch_leaves=False, vectorized=False, trials=trials
    )
    after, cold_after = cold_service_run(
        repo, queries, batch_leaves=True, vectorized=True, trials=trials
    )
    assert before == after, f"cold-path answer mismatch at n={n}"

    # 3. Crossover vs the exact linear scan (single + batched amortized).
    scan = LinearScanPtile(datasets, mode="tree")
    q_scan = time_callable(lambda: scan.query(QUERY, THETA), repeats=repeats)
    q_single = time_callable(
        lambda: index_vec.query(QUERY, THETA), repeats=repeats
    )
    xbatch = batch_queries(CROSSOVER_BATCH, np.random.default_rng(n + 2))
    q_batched = time_callable(
        lambda: index_vec.query_many(xbatch), repeats=repeats
    ) / CROSSOVER_BATCH
    batched_answers = [sorted(r.index_set) for r in index_vec.query_many(xbatch)]
    loop_answers = [
        sorted(index_vec.query(r, t).index_set) for r, t in xbatch
    ]
    assert batched_answers == loop_answers, f"query_many mismatch at n={n}"

    return {
        "n": n,
        "mapped_pts": index_vec.n_mapped_points,
        "build_s_reference": build_ref,
        "build_s_vectorized": build_vec,
        "construction_speedup": build_ref / build_vec,
        "cold_s_before": cold_before,
        "cold_s_after": cold_after,
        "cold_qps_before": len(queries) / cold_before,
        "cold_qps_after": len(queries) / cold_after,
        "cold_speedup": cold_before / cold_after,
        "q_scan": q_scan,
        "q_index_single": q_single,
        "q_index_batched": q_batched,
        "index_beats_scan_single": q_single < q_scan,
        "index_beats_scan_batched": q_batched < q_scan,
    }


def crossover_n(rows: list[dict], key: str) -> int | None:
    """Smallest bench N from which the index beats the scan (None if never)."""
    for row in sorted(rows, key=lambda r: r["n"]):
        if row[key]:
            return row["n"]
    return None


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="one small size, equality + no-regression asserts, no JSON",
    )
    args = parser.parse_args(argv)
    sizes = (40,) if args.smoke else (80, 160, 320)
    n_queries = 48 if args.smoke else 150
    repeats = 3 if args.smoke else 5
    trials = 2

    table = TableReporter(
        "COLD-PATH: construction + cold batch, pre-PR path vs vectorized/batched",
        ["N", "build ref (s)", "build vec (s)", "x", "cold before (s)",
         "cold after (s)", "QPS before", "QPS after", "x", "scan (s)",
         "idx single (s)", "idx batched (s)"],
    )
    rows = []
    for n in sizes:
        r = run_scale(n, n_queries, repeats, trials)
        rows.append(r)
        table.add_row(
            [r["n"], r["build_s_reference"], r["build_s_vectorized"],
             r["construction_speedup"], r["cold_s_before"], r["cold_s_after"],
             r["cold_qps_before"], r["cold_qps_after"], r["cold_speedup"],
             r["q_scan"], r["q_index_single"], r["q_index_batched"]]
        )
    table.print()
    print("Answer sets identical on every path at every size "
          "(construction, cold batch, query_many).")

    if args.smoke:
        worst = max(r["cold_s_after"] / r["cold_s_before"] for r in rows)
        assert worst <= 1.15, (
            f"batched cold evaluation regressed vs the per-leaf loop "
            f"({worst:.2f}x slower)"
        )
        print("smoke: batched cold evaluation is no slower than the "
              "per-leaf loop; no JSON written")
        return 0

    largest = rows[-1]
    assert largest["construction_speedup"] >= 3.0, (
        f"construction speedup {largest['construction_speedup']:.1f}x < 3x"
    )
    assert largest["cold_speedup"] >= 5.0, (
        f"cold-path speedup {largest['cold_speedup']:.1f}x < 5x"
    )
    before_x = crossover_n(rows, "index_beats_scan_single")
    after_x = crossover_n(rows, "index_beats_scan_batched")
    print(f"crossover vs scan: single-query N = {before_x}, "
          f"batched N = {after_x}")
    path = json_report(
        os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                     "BENCH_cold_path.json"),
        rows,
        meta={
            "bench": "cold_path",
            "sample_size": SAMPLE_SIZE,
            "eps": EPS,
            "n_queries": n_queries,
            "crossover_batch": CROSSOVER_BATCH,
            "crossover_n_single_query": before_x,
            "crossover_n_batched": after_x,
            "construction_speedup_at_largest_n": largest["construction_speedup"],
            "cold_speedup_at_largest_n": largest["cold_speedup"],
        },
    )
    print(f"wrote {path}")
    return 0


def test_cold_path_batched_query_many(benchmark):
    rng = np.random.default_rng(17)
    syns = [ExactSynopsis(p) for p in planted_lake(60, rng)]
    index, _ = build_index(syns, vectorized=True)
    batch = batch_queries(16, np.random.default_rng(18))
    benchmark(lambda: index.query_many(batch))


if __name__ == "__main__":
    raise SystemExit(main())
