"""T-C.5 — Theorem C.5: the exact 1-d CPtile structure, measured.

Paper claims: O(N_total log^3 N_total) space/preprocessing, exact answers,
O(log^3 N_total + OUT) query, no duplicates (Lemma C.1).  We verify
exactness against brute force and fit the query-time slope against the
total point count while holding OUT roughly fixed.

Run ``python benchmarks/bench_thmC5_exact_1d.py`` for the table.
"""

from __future__ import annotations

import numpy as np

from repro.bench.harness import TableReporter, fit_loglog_slope, time_callable
from repro.core.ptile_exact_1d import ExactPtile1DIndex
from repro.geometry.interval import Interval

THETA = Interval(0.4, 0.8)


def make_datasets(n_datasets: int, points_each: int, rng):
    return [
        np.unique(rng.uniform(0.0, 1.0, size=points_each * 2))[:points_each]
        for _ in range(n_datasets)
    ]


def run_scale(n_datasets: int, points_each: int, seed: int) -> dict:
    rng = np.random.default_rng(seed)
    datasets = make_datasets(n_datasets, points_each, rng)
    build = time_callable(lambda: ExactPtile1DIndex(datasets, THETA), repeats=1)
    index = ExactPtile1DIndex(datasets, THETA)
    exact_ok = True
    for _ in range(5):
        lo, hi = sorted(rng.uniform(0, 1, size=2).tolist())
        if set(index.query(lo, hi).indexes) != index.brute_force(lo, hi):
            exact_ok = False
    q = time_callable(lambda: index.query(0.2, 0.8), repeats=3)
    out = index.query(0.2, 0.8).out_size
    return {
        "total": index.total_points,
        "build": build,
        "q": q,
        "out": out,
        "exact": exact_ok,
    }


def main() -> None:
    table = TableReporter(
        f"T-C.5: exact CPtile in R^1, fixed theta = [{THETA.lo}, {THETA.hi}]",
        ["N datasets", "total points", "build (s)", "query (s)", "OUT", "exact"],
    )
    totals, queries = [], []
    for n, p in ((50, 100), (100, 200), (200, 400), (400, 800)):
        r = run_scale(n, p, seed=n)
        table.add_row([n, r["total"], r["build"], r["q"], r["out"], r["exact"]])
        assert r["exact"]
        totals.append(r["total"])
        queries.append(r["q"])
    table.print()
    slope = fit_loglog_slope(totals, queries)
    print(f"query-time slope vs total points: {slope:.2f}")
    print("Paper: exact output with polylog + OUT query — measured queries are")
    print("exact everywhere and grow far slower than linearly in total points")
    print("(OUT grows with N here, so the slope includes the output term).")


def test_thmC5_query(benchmark):
    rng = np.random.default_rng(5)
    datasets = make_datasets(150, 200, rng)
    index = ExactPtile1DIndex(datasets, THETA)
    result = benchmark(lambda: index.query(0.3, 0.7))
    assert set(result.indexes) == index.brute_force(0.3, 0.7)


if __name__ == "__main__":
    main()
