"""T-5.4 — Theorem 5.4: the Pref threshold structure, measured.

Paper claims: O(N) space per net direction, construction dominated by the
synopsis Score calls, O(log N + OUT) query, recall 1, precision within
eps + 2*delta (after eps-halving; we expose the algorithmic 2*eps slack).
We sweep N and compare against the Ω(total points) exact scan.

Run ``python benchmarks/bench_thm54_pref.py`` for the tables.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.pref_scan import LinearScanPref
from repro.bench.harness import TableReporter, fit_loglog_slope, time_callable
from repro.core.pref_index import PrefIndex
from repro.synopsis.exact import ExactSynopsis

K = 5
EPS = 0.1
A_THETA = 0.45


def planted_lake(n: int, rng):
    datasets = []
    for i in range(n):
        reach = 0.2 + 0.6 * ((i % 25) / 25)
        pts = rng.uniform(-reach, reach, size=(300, 2))
        datasets.append(np.clip(pts, -0.99, 0.99))
    return datasets


def run_scale(n: int, seed: int) -> dict:
    rng = np.random.default_rng(seed)
    datasets = planted_lake(n, rng)
    syns = [ExactSynopsis(p) for p in datasets]
    build = time_callable(lambda: PrefIndex(syns, k=K, eps=EPS), repeats=1)
    index = PrefIndex(syns, k=K, eps=EPS)
    scan = LinearScanPref(datasets)
    u = np.array([0.6, 0.8])
    truth = {
        i for i, p in enumerate(datasets) if np.sort(p @ u)[300 - K] >= A_THETA
    }
    result = index.query(u, A_THETA)
    recall = 1.0 if truth <= result.index_set else 0.0
    precision_ok = all(
        np.sort(datasets[j] @ u)[300 - K] >= A_THETA - 2 * EPS - 1e-9
        for j in result.indexes
    )
    q_index = time_callable(lambda: index.query(u, A_THETA), repeats=5)
    q_scan = time_callable(lambda: scan.query(u, K, A_THETA), repeats=3)
    return {
        "n": n,
        "build": build,
        "dirs": index.n_directions,
        "out": result.out_size,
        "recall": recall,
        "precision_ok": precision_ok,
        "q_index": q_index,
        "q_scan": q_scan,
    }


def main() -> None:
    table = TableReporter(
        f"T-5.4: Pref structure vs N (k = {K}, eps = {EPS}, a_theta = {A_THETA})",
        ["N", "build (s)", "|C| dirs", "OUT", "recall", "precision ok",
         "query (s)", "scan (s)", "speedup"],
    )
    ns, queries, scans = [], [], []
    for n in (50, 100, 200, 400):
        r = run_scale(n, seed=n)
        table.add_row(
            [r["n"], r["build"], r["dirs"], r["out"], r["recall"],
             r["precision_ok"], r["q_index"], r["q_scan"],
             r["q_scan"] / max(r["q_index"], 1e-9)]
        )
        assert r["recall"] == 1.0 and r["precision_ok"]
        ns.append(n)
        queries.append(r["q_index"])
        scans.append(r["q_scan"])
    table.print()
    print(f"index query slope vs N: {fit_loglog_slope(ns, queries):.2f} "
          "(paper: O(log N + OUT); OUT grows with N here)")
    print(f"scan  query slope vs N: {fit_loglog_slope(ns, scans):.2f} (baseline: Ω(N))")


def test_thm54_query(pref_index_2d, benchmark):
    u = np.array([0.6, 0.8])
    benchmark(lambda: pref_index_2d.query(u, 0.3))


def test_thm54_scan_baseline(pref_scan_2d, benchmark):
    u = np.array([0.6, 0.8])
    benchmark(lambda: pref_scan_2d.query(u, 5, 0.3))


if __name__ == "__main__":
    main()
