"""ABL-PAIRS — ablation: maximal-pair pruning vs the paper's verbatim set.

Design choice under study (DESIGN.md substitution 3): Section 4.3 stores
all pairs (rho, rho_hat) without an intermediate rectangle; we store only
the provably query-matchable pairs (one neighbour expansion per inner
rectangle).  This ablation counts both families and times both
enumerations as the coreset grows — the pruning is what makes the range
structure's constant factors practical.

Run ``python benchmarks/bench_ablation_pair_pruning.py`` for the table.
"""

from __future__ import annotations

import numpy as np

from repro.bench.harness import TableReporter, time_callable
from repro.geometry.rect_enum import (
    RectangleGrid,
    enumerate_maximal_pairs,
    enumerate_maximal_pairs_naive,
)
from repro.geometry.rectangle import Rectangle


def run_case(n_samples: int, dim: int, seed: int) -> dict:
    rng = np.random.default_rng(seed)
    pts = rng.uniform(0.1, 0.9, size=(n_samples, dim))
    box = Rectangle([0.0] * dim, [1.0] * dim)
    grid = RectangleGrid(pts, box)
    pruned = enumerate_maximal_pairs(grid)
    naive_all = enumerate_maximal_pairs_naive(grid, matchable_only=False)
    naive_matchable = enumerate_maximal_pairs_naive(grid, matchable_only=True)
    t_pruned = time_callable(lambda: enumerate_maximal_pairs(grid), repeats=3)
    t_naive = time_callable(
        lambda: enumerate_maximal_pairs_naive(grid, matchable_only=False), repeats=1
    )
    def key(p):
        return (tuple(p[0].lo), tuple(p[0].hi), tuple(p[1].lo), tuple(p[1].hi))

    agree = {key(p) for p in pruned} == {key(p) for p in naive_matchable}
    return {
        "s": n_samples,
        "dim": dim,
        "pruned": len(pruned),
        "paper_all": len(naive_all),
        "ratio": len(naive_all) / max(1, len(pruned)),
        "agree": agree,
        "t_pruned": t_pruned,
        "t_naive": t_naive,
    }


def main() -> None:
    table = TableReporter(
        "ABL-PAIRS: pruned pair family vs the paper's verbatim definition",
        ["dim", "s", "pruned pairs", "paper's pairs", "ratio",
         "matchable agree", "pruned enum (s)", "naive enum (s)"],
    )
    for dim, sizes in ((1, (4, 6, 8, 10)), (2, (3, 4))):
        for s in sizes:
            r = run_case(s, dim, seed=s * 10 + dim)
            table.add_row(
                [r["dim"], r["s"], r["pruned"], r["paper_all"], r["ratio"],
                 r["agree"], r["t_pruned"], r["t_naive"]]
            )
            assert r["agree"]
    table.print()
    print("Ablation: the verbatim pair set grows ~s^{4d} while the pruned one")
    print("grows ~s^{2d}; they agree exactly on all query-matchable pairs, so")
    print("the pruning is loss-free (proof in repro/geometry/rect_enum.py).")


def test_abl_pruned_enumeration(benchmark):
    rng = np.random.default_rng(20)
    pts = rng.uniform(0.1, 0.9, size=(8, 1))
    grid = RectangleGrid(pts, Rectangle([0.0], [1.0]))
    benchmark(lambda: enumerate_maximal_pairs(grid))


if __name__ == "__main__":
    main()
