"""T-FED — Lemma 2.1 and the federated error model, measured per synopsis.

Paper artifact: the federated setting assumes each synopsis has bounded
error delta_i; Lemma 2.1 says sampling a coreset from a synopsis yields an
(eps + delta)-sample; the end-to-end FPtile error is eps + 2*delta.  We
measure, for each synopsis type: the advertised delta vs the observed worst
rectangle error, and the end-to-end recall/precision of the FPtile index
built on it.

Run ``python benchmarks/bench_federated_synopses.py`` for the tables.
"""

from __future__ import annotations

import numpy as np

from repro.bench.harness import TableReporter
from repro.core.ptile_range import PtileRangeIndex
from repro.geometry.interval import Interval
from repro.geometry.rectangle import Rectangle
from repro.synopsis import (
    EpsilonSampleSynopsis,
    ExactSynopsis,
    GMMSynopsis,
    HistogramSynopsis,
    QuantileHistogramSynopsis,
)
from repro.workloads.generators import synthetic_data_lake
from repro.workloads.queries import random_rectangles

THETA = Interval(0.2, 0.6)


def build_synopses(kind: str, lake, rng):
    if kind == "exact":
        return [ExactSynopsis(p) for p in lake]
    if kind == "eps-sample":
        return [EpsilonSampleSynopsis.from_points(p, size=300, rng=rng) for p in lake]
    if kind == "histogram":
        return [HistogramSynopsis(p, bins=24) for p in lake]
    if kind == "gmm":
        return [GMMSynopsis(p, n_components=3, rng=rng, n_iter=25) for p in lake]
    if kind == "quantile":
        return [QuantileHistogramSynopsis(p, rng=rng) for p in lake]
    raise ValueError(kind)


def observed_delta(synopsis, points, rects) -> float:
    worst = 0.0
    for rect in rects:
        exact = rect.count_inside(points) / points.shape[0]
        worst = max(worst, abs(synopsis.mass(rect) - exact))
    return worst


def main() -> None:
    rng = np.random.default_rng(42)
    lake = synthetic_data_lake(30, 2, rng, median_size=1500, size_sigma=0.3)
    probe_rects = random_rectangles(40, 2, rng)
    query_rect = Rectangle([0.2, 0.2], [0.6, 0.6])
    masses = [query_rect.count_inside(p) / p.shape[0] for p in lake]
    truth = {i for i, m in enumerate(masses) if m in THETA}

    table = TableReporter(
        "T-FED: synopsis error model (Lemma 2.1) and end-to-end FPtile",
        ["synopsis", "advertised delta (max)", "observed delta (max)",
         "honest", "recall", "FP within slack", "OUT"],
    )
    for kind in ("exact", "eps-sample", "histogram", "gmm", "quantile"):
        syns = build_synopses(kind, lake, rng)
        adv = max(s.delta_ptile for s in syns)
        obs = max(observed_delta(s, p, probe_rects) for s, p in zip(syns, lake))
        index = PtileRangeIndex(
            syns, eps=0.1, sample_size=16, rng=np.random.default_rng(5)
        )
        result = index.query(query_rect, THETA)
        recall = truth <= result.index_set
        slack_ok = all(
            THETA.lo - 2 * index.eps_effective - 2 * index.delta_of(j) - 1e-9
            <= masses[j]
            <= THETA.hi + 2 * index.eps_effective + 2 * index.delta_of(j) + 1e-9
            for j in result.indexes
        )
        table.add_row(
            [kind, adv, obs, obs <= adv + 1e-9, recall, slack_ok, result.out_size]
        )
        assert recall and slack_ok
    table.print()
    print("Lemma 2.1 / federated model reproduced: every synopsis type's")
    print("observed rectangle error stays within its advertised delta, and the")
    print("FPtile index keeps recall 1 with false positives inside eps + 2*delta.")


def test_tfed_fptile_query(benchmark):
    rng = np.random.default_rng(9)
    lake = synthetic_data_lake(25, 2, rng, median_size=800, size_sigma=0.3)
    syns = [EpsilonSampleSynopsis.from_points(p, size=200, rng=rng) for p in lake]
    index = PtileRangeIndex(syns, eps=0.15, sample_size=12, rng=rng)
    rect = Rectangle([0.2, 0.2], [0.6, 0.6])
    benchmark(lambda: index.query(rect, THETA))


if __name__ == "__main__":
    main()
