"""Federated data-market search: no raw data leaves the owners.

Scenario (Section 1.1, federated setting): a data marketplace indexes N
sellers' datasets, but each seller only publishes a *synopsis* — here a
mix of histograms, Gaussian-mixture models and ε-samples, each with its
own advertised error delta_i.  A buyer searches for datasets with a given
mass inside a region; the marketplace must not miss any qualifying dataset
(missing sellers is "generally unacceptable in data marketplaces").

Run:  python examples/federated_market.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    EpsilonSampleSynopsis,
    GMMSynopsis,
    HistogramSynopsis,
    Interval,
    PtileRangeIndex,
    Rectangle,
)
from repro.workloads.generators import synthetic_data_lake


def main() -> None:
    rng = np.random.default_rng(99)
    n_sellers = 45
    lake = synthetic_data_lake(n_sellers, 2, rng, family="clustered",
                               median_size=2000)

    # Each seller publishes whichever synopsis kind it prefers.
    synopses = []
    kinds = []
    for i, data in enumerate(lake):
        kind = ("histogram", "gmm", "eps-sample")[i % 3]
        kinds.append(kind)
        if kind == "histogram":
            synopses.append(HistogramSynopsis(data, bins=24))
        elif kind == "gmm":
            synopses.append(GMMSynopsis(data, n_components=3, rng=rng, n_iter=25))
        else:
            synopses.append(
                EpsilonSampleSynopsis.from_points(data, size=400, rng=rng)
            )
    print(f"marketplace: {n_sellers} sellers, synopsis kinds: "
          f"{dict((k, kinds.count(k)) for k in set(kinds))}")
    print("advertised per-seller errors delta_i: "
          f"min={min(s.delta_ptile for s in synopses):.3f}, "
          f"max={max(s.delta_ptile for s in synopses):.3f}")

    # The marketplace builds ONE federated index over all synopses.
    index = PtileRangeIndex(synopses, eps=0.1, rng=rng)

    # Buyer: datasets with 20% - 60% of their mass in this region.
    region = Rectangle([0.3, 0.3], [0.7, 0.7])
    theta = Interval(0.2, 0.6)
    result = index.query(region, theta)
    print(f"\nbuyer query: mass in {region} within [{theta.lo}, {theta.hi}]")
    print(f"reported sellers: {result.indexes}")

    # Verification against the sellers' private raw data (only possible in
    # this synthetic demo): recall must be perfect; every false positive
    # must be inside the per-seller slack eps + 2*delta_i.
    masses = [region.count_inside(d) / d.shape[0] for d in lake]
    truth = {i for i, m in enumerate(masses) if m in theta}
    missed = truth - result.index_set
    print(f"\nexactly qualifying sellers : {len(truth)}")
    print(f"missed by the marketplace  : {sorted(missed)}  (guaranteed empty)")
    assert not missed
    for j in result.indexes:
        slack = 2 * index.eps_effective + 2 * index.delta_of(j)
        assert theta.lo - slack - 1e-9 <= masses[j] <= theta.hi + slack + 1e-9
    fps = result.index_set - truth
    print(f"near-boundary extras       : {len(fps)} "
          "(each within its seller's eps + 2*delta_i slack)")

    # A new seller joins the market: O(1)-style dynamic insertion.
    newcomer = synthetic_data_lake(1, 2, rng, median_size=1500)[0]
    key = index.insert_synopsis(HistogramSynopsis(newcomer, bins=24))
    res2 = index.query(region, theta)
    newcomer_mass = region.count_inside(newcomer) / newcomer.shape[0]
    print(f"\nseller {key} joined (true mass {newcomer_mass:.2f}); "
          f"reported now: {key in res2.index_set}")


if __name__ == "__main__":
    main()
