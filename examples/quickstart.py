"""Quickstart: index a synthetic data lake and search it by distribution.

Demonstrates the core loop:

1. build a repository of datasets,
2. construct a :class:`~repro.DatasetSearchEngine`,
3. search with percentile and preference predicates,
4. compare against exact ground truth.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    DatasetSearchEngine,
    PercentileMeasure,
    PreferenceMeasure,
    Rectangle,
    Repository,
    pred,
)
from repro.workloads.generators import synthetic_data_lake


def main() -> None:
    rng = np.random.default_rng(7)

    # 1. A repository of 40 two-dimensional datasets (a small data lake).
    lake = synthetic_data_lake(40, 2, rng, family="clustered", median_size=1200)
    repo = Repository.from_arrays(lake)
    print(f"repository: {repo.n_datasets} datasets, {repo.total_points} points total")

    # 2. The search engine (centralized setting: raw data access).
    engine = DatasetSearchEngine(repository=repo, eps=0.1, rng=rng)

    # 3a. Percentile query: datasets with >= 25% of their points in a region.
    region = Rectangle([0.0, 0.0], [0.4, 0.4])
    ptile_query = pred(PercentileMeasure(region), 0.25)
    result = engine.search(ptile_query)
    print(f"\n>= 25% of mass in {region}:")
    print(f"  reported datasets: {result.indexes}")

    # 3b. Preference query: datasets whose 10th-best point scores >= 1.0
    #     under the linear preference 0.7*x0 + 0.7*x1.
    direction = np.array([0.7, 0.7])
    pref_query = pred(PreferenceMeasure(direction, k=10), 1.0)
    result = engine.search(pref_query)
    print(f"\n10th-largest projection on {direction} >= 1.0:")
    print(f"  reported datasets: {result.indexes}")

    # 3c. Both at once: a looser mass floor combined with the preference
    #     threshold (high-scoring datasets that still cover the region).
    combined = pred(PercentileMeasure(region), 0.10) & pref_query
    result = engine.search(combined)
    print("\nconjunction of the two predicates:")
    print(f"  reported datasets: {result.indexes}")

    # 4. Quality versus exact ground truth: recall is guaranteed to be 1.0;
    #    false positives are within eps + 2*delta of the thresholds.
    quality = engine.evaluate_quality(combined)
    print("\nquality vs brute force:")
    print(f"  exact answer size : {quality['truth_size']}")
    print(f"  reported size     : {quality['reported_size']}")
    print(f"  recall            : {quality['recall']:.3f}  (theorem: always 1.0)")
    print(f"  precision         : {quality['precision']:.3f}")
    print(
        "\nnote: in 2-d the default coreset budget buys only eps_eff = "
        f"{engine.ptile_index.eps_effective:.2f}, so 'near the threshold' is a"
        "\nwide band — every extra report is within 2*eps_eff of the bounds."
        "\nRaise sample_size (more memory) to tighten precision."
    )
    assert quality["recall"] == 1.0


if __name__ == "__main__":
    main()
