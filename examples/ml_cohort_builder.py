"""Balanced-cohort discovery for ML training (the paper's motivation).

Scenario (Section 1): an ML engineer needs training datasets with balanced
representation across demographic groups to avoid selection bias.  Groups
are regions of feature space; "balanced" means each group's share of the
dataset lies inside a target band — a conjunction of two-sided percentile
predicates, which prior systems (one-sided-only) cannot express.

Run:  python examples/ml_cohort_builder.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    And,
    DatasetSearchEngine,
    Interval,
    PercentileMeasure,
    Predicate,
    Rectangle,
    Repository,
)

# Feature space: (age_normalized, income_normalized).  Groups are quadrants.
GROUPS = {
    "young-low":  Rectangle([0.0, 0.0], [0.5, 0.5]),
    "young-high": Rectangle([0.0, 0.5], [0.5, 1.0]),
    "older-low":  Rectangle([0.5, 0.0], [1.0, 0.5]),
    "older-high": Rectangle([0.5, 0.5], [1.0, 1.0]),
}
#: Each group must hold between 15% and 40% of a balanced dataset.
BAND = Interval(0.15, 0.40)


def make_candidate_datasets(n: int, rng: np.random.Generator) -> list[np.ndarray]:
    """Candidate training sets with varying degrees of group imbalance."""
    datasets = []
    for _ in range(n):
        # Mixture weights over the four quadrants; Dirichlet alpha controls
        # how balanced the dataset is.
        alpha = rng.uniform(0.4, 6.0)
        weights = rng.dirichlet([alpha] * 4)
        counts = rng.multinomial(1200, weights)
        parts = []
        for (name, rect), c in zip(GROUPS.items(), counts):
            if c:
                parts.append(rng.uniform(rect.lo, rect.hi, size=(c, 2)))
        datasets.append(np.vstack(parts))
    return datasets


def main() -> None:
    rng = np.random.default_rng(4242)
    datasets = make_candidate_datasets(50, rng)
    repo = Repository.from_arrays(
        datasets, names=[f"cohort-{i:03d}" for i in range(len(datasets))],
        schema=["age", "income"],
    )
    engine = DatasetSearchEngine(repository=repo, eps=0.08, rng=rng)

    balanced = And(
        [Predicate(PercentileMeasure(rect), BAND) for rect in GROUPS.values()]
    )
    print(f"candidates: {repo.n_datasets} datasets; requirement: every group's "
          f"share in [{BAND.lo:.0%}, {BAND.hi:.0%}]")

    result = engine.search(balanced)
    quality = engine.evaluate_quality(balanced)
    print(f"\nexactly balanced datasets : {quality['truth_size']}")
    print(f"reported by the engine    : {quality['reported_size']}")
    print(f"recall                    : {quality['recall']:.3f} (guaranteed 1.0)")
    print(f"precision                 : {quality['precision']:.3f}")
    assert quality["recall"] == 1.0

    print("\nreported cohorts and their group shares:")
    header = "  {:<12}".format("cohort") + "".join(
        f"{name:>12}" for name in GROUPS
    )
    print(header)
    for j in result.indexes[:10]:
        ds = repo[j]
        shares = [ds.percentile_mass(rect) for rect in GROUPS.values()]
        row = f"  {ds.name:<12}" + "".join(f"{s:>11.1%} " for s in shares)
        flag = "" if j in quality["false_positives"] else "  <- exactly balanced"
        print(row + flag)

    # Contrast: a one-sided-only engine (threshold predicates) cannot
    # express the upper end of the band — it would accept a dataset that is
    # 80% one group as long as every group clears the 15% floor... which it
    # cannot, but it WOULD accept 55/15/15/15, an imbalanced cohort.
    floor_only = And(
        [Predicate(PercentileMeasure(rect), Interval(0.15, 1.0)) for rect in GROUPS.values()]
    )
    fl = engine.ground_truth(floor_only)
    band = engine.ground_truth(balanced)
    print(f"\nfloor-only (one-sided, prior systems): {len(fl)} datasets qualify;")
    print(f"the two-sided band keeps {len(band)} — the difference "
          f"({len(fl - band)}) are imbalanced cohorts a one-sided search lets through.")


if __name__ == "__main__":
    main()
