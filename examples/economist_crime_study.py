"""Example 1.1 from the paper: the economist's two searches.

Scenario (Section 1): an economist studying crime wants

(i)  datasets with at least 10% of their incident records from Brooklyn
     (a percentile query over a geographic rectangle), and
(ii) cities with at least k = 5 neighborhoods of high quality of life,
     where quality is a linear function of safety, clean air, healthcare
     and education (a top-k preference query).

Both run on synthetic open-data repositories with known ground truth so
the guarantees can be checked on the spot.

Run:  python examples/economist_crime_study.py
"""

from __future__ import annotations

import numpy as np

from repro import PrefIndex, PtileThresholdIndex, ExactSynopsis
from repro.workloads.opendata import (
    BROOKLYN_REGION,
    city_incident_repository,
    city_quality_repository,
)


def percentile_study(rng: np.random.Generator) -> None:
    print("=" * 72)
    print("(i) Percentile search: >= 10% of incidents from Brooklyn")
    print("=" * 72)
    repo, fractions = city_incident_repository(60, rng)
    index = PtileThresholdIndex(
        [ExactSynopsis(ds.points) for ds in repo], eps=0.1, rng=rng
    )
    result = index.query(BROOKLYN_REGION, a_theta=0.10)
    truth = {i for i, f in enumerate(fractions) if f >= 0.10}
    print(f"cities searched          : {repo.n_datasets}")
    print(f"exactly qualifying       : {len(truth)}")
    print(f"reported by the index    : {result.out_size}")
    print(f"all qualifying included  : {truth <= result.index_set}  (guaranteed)")
    slack = 2 * index.eps_effective
    near_misses = [j for j in result.indexes if fractions[j] < 0.10]
    print(f"near-miss reports        : {len(near_misses)} "
          f"(all within the {slack:.2f} slack)")
    for j in near_misses:
        assert fractions[j] >= 0.10 - slack - 1e-9
    top = sorted(result.indexes, key=lambda j: -fractions[j])[:5]
    print("top reported cities      :")
    for j in top:
        print(f"  {repo[j].name}: {fractions[j]:.1%} of incidents in Brooklyn")


def preference_study(rng: np.random.Generator) -> None:
    print()
    print("=" * 72)
    print("(ii) Preference search: cities with k = 5 high-quality neighborhoods")
    print("=" * 72)
    repo = city_quality_repository(60, rng)
    # The economist weighs safety most; attributes are all higher-is-better.
    weights = np.array([0.5, 0.2, 0.2, 0.1])
    unit = weights / np.linalg.norm(weights)
    k, tau = 5, 0.45
    # In d = 4 the direction net has O(eps^-3) vectors; eps = 0.35 keeps it
    # a few thousand directions while the guarantees below still hold.
    index = PrefIndex([ExactSynopsis(ds.points) for ds in repo], k=k, eps=0.35)
    result = index.query(unit, a_theta=tau)
    truth = {i for i, ds in enumerate(repo) if ds.kth_score(unit, k) >= tau}
    print(f"cities searched          : {repo.n_datasets}")
    print(f"quality weights          : {dict(zip(repo.schema, weights))}")
    print(f"exactly qualifying       : {len(truth)}")
    print(f"reported by the index    : {result.out_size}")
    print(f"all qualifying included  : {truth <= result.index_set}  (guaranteed)")
    top = sorted(result.indexes, key=lambda j: -repo[j].kth_score(unit, k))[:5]
    print("top reported cities      :")
    for j in top:
        score = repo[j].kth_score(unit, k)
        print(f"  {repo[j].name}: 5th-best neighborhood scores {score:.3f}")
    for j in result.indexes:
        assert repo[j].kth_score(unit, k) >= tau - 2 * index.eps - 1e-9


def main() -> None:
    rng = np.random.default_rng(1776)
    percentile_study(rng)
    preference_study(rng)


if __name__ == "__main__":
    main()
