"""Section 6 extensions in action: nearest-neighbor and diversity search.

Scenario: a clinical-research platform hosts per-hospital patient-cohort
tables (two normalized biomarkers each).  A researcher

(i)  has a reference patient profile and wants every cohort containing a
     similar patient (nearest-neighbor query: dist(q, P_j) <= tau), and
(ii) needs cohorts that are *diverse* within a biomarker range — covering
     a wide spectrum rather than one phenotype (diversity query:
     diam(P_j ∩ R) >= tau).

Both are the paper's Section 6 future-work queries, realized here with
additive r-cover coresets.

Run:  python examples/patient_similarity_search.py
"""

from __future__ import annotations

import numpy as np

from repro import CoverSynopsis, DiversityIndex, NearestNeighborIndex, Rectangle
from repro.core.diversity_index import diameter

COVER_RADIUS = 0.03


def make_cohorts(n_hospitals: int, rng: np.random.Generator) -> list[np.ndarray]:
    cohorts = []
    for i in range(n_hospitals):
        # Hospitals differ in specialization: some narrow, some broad.
        n_groups = int(rng.integers(1, 4))
        parts = []
        counts = rng.multinomial(500, rng.dirichlet(np.ones(n_groups)))
        for c in counts:
            if c == 0:
                continue
            center = rng.uniform(0.15, 0.85, size=2)
            spread = rng.uniform(0.02, 0.12)
            parts.append(rng.normal(center, spread, size=(c, 2)))
        cohorts.append(np.clip(np.vstack(parts), 0.0, 1.0))
    return cohorts


def main() -> None:
    rng = np.random.default_rng(2718)
    cohorts = make_cohorts(40, rng)
    covers = [CoverSynopsis(c, COVER_RADIUS) for c in cohorts]
    compression = sum(c.size for c in covers) / sum(len(c) for c in cohorts)
    print(f"40 hospital cohorts, {sum(len(c) for c in cohorts)} patients;")
    print(f"cover synopses keep {compression:.0%} of the points "
          f"(radius {COVER_RADIUS})")

    # (i) Nearest-neighbor search around a reference profile.
    print("\n(i) cohorts containing a patient similar to the reference")
    reference = np.array([0.62, 0.38])
    tau = 0.08
    nn = NearestNeighborIndex(covers)
    result = nn.query(reference, tau)
    dists = [float(np.linalg.norm(c - reference, axis=1).min()) for c in cohorts]
    truth = {i for i, d in enumerate(dists) if d <= tau}
    print(f"    reference profile {reference}, tau = {tau}")
    print(f"    exactly matching cohorts : {sorted(truth)}")
    print(f"    reported                 : {sorted(result.indexes)}")
    assert truth <= result.index_set  # recall guarantee
    for j in result.indexes:
        assert dists[j] <= tau + 2 * COVER_RADIUS + 1e-9  # additive precision

    # (ii) Diversity within a biomarker window.
    print("\n(ii) cohorts with diverse phenotypes in a biomarker window")
    window = Rectangle([0.2, 0.2], [0.8, 0.8])
    spread_tau = 0.5
    div = DiversityIndex(covers)
    result = div.query(window, spread_tau)
    exact = [diameter(c[window.contains_points(c)]) for c in cohorts]
    truth = {i for i, d in enumerate(exact) if d >= spread_tau}
    print(f"    window {window}, diameter >= {spread_tau}")
    print(f"    exactly qualifying cohorts: {len(truth)}")
    print(f"    reported                  : {result.out_size} "
          f"(screened {result.stats['candidates']} candidates, not all 40)")
    assert truth <= result.index_set
    top = sorted(result.indexes, key=lambda j: -exact[j])[:5]
    for j in top:
        print(f"      cohort {j:2d}: in-window diameter {exact[j]:.2f}")


if __name__ == "__main__":
    main()
